(* Tests for etx_routing: the problem formulation, Theorem 1, mappings,
   weight functions, and the three-phase EAR/SDR router of Sec 6. *)

module Problem = Etx_routing.Problem
module Upper_bound = Etx_routing.Upper_bound
module Mapping = Etx_routing.Mapping
module Weight = Etx_routing.Weight
module Router = Etx_routing.Router
module Routing_table = Etx_routing.Routing_table
module Policy = Etx_routing.Policy
module Topology = Etx_graph.Topology
module Digraph = Etx_graph.Digraph

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))

let aes_problem k = Problem.aes ~node_budget:k ()

(* - Problem - *)

let test_problem_aes_parameters () =
  let p = aes_problem 16 in
  Alcotest.(check int) "p" 3 p.Problem.module_count;
  Alcotest.(check (array int)) "f" [| 10; 9; 11 |] p.acts_per_job;
  check_float "E1" 120.1 p.computation_energy_pj.(0);
  check_float "B" 60000. p.battery_budget_pj;
  check_float_eps 1e-6 "c = one 1cm hop of 261 bits" 116.7192
    p.communication_energy_pj.(0)

let test_problem_normalized_energy () =
  let p = aes_problem 16 in
  check_float_eps 1e-6 "H1" (10. *. (120.1 +. 116.7192))
    (Problem.normalized_energy p ~module_index:0);
  check_float_eps 1e-6 "H3" (11. *. (176.55 +. 116.7192))
    (Problem.normalized_energy p ~module_index:2);
  check_float_eps 1e-6 "sum H"
    (Problem.normalized_energy p ~module_index:0
    +. Problem.normalized_energy p ~module_index:1
    +. Problem.normalized_energy p ~module_index:2)
    (Problem.total_normalized_energy p)

let test_problem_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Problem.make: no modules") (fun () ->
      ignore
        (Problem.make ~acts_per_job:[||] ~computation_energy_pj:[||]
           ~communication_energy_pj:[||] ~battery_budget_pj:1. ~node_budget:1));
  Alcotest.check_raises "mismatch" (Invalid_argument "Problem.make: array length mismatch")
    (fun () ->
      ignore
        (Problem.make ~acts_per_job:[| 1; 2 |] ~computation_energy_pj:[| 1. |]
           ~communication_energy_pj:[| 1.; 2. |] ~battery_budget_pj:1. ~node_budget:2));
  Alcotest.check_raises "node budget"
    (Invalid_argument "Problem.make: node budget smaller than the module count") (fun () ->
      ignore
        (Problem.make ~acts_per_job:[| 1; 1 |] ~computation_energy_pj:[| 1.; 1. |]
           ~communication_energy_pj:[| 1.; 1. |] ~battery_budget_pj:1. ~node_budget:1))

(* - Theorem 1 - *)

let test_upper_bound_matches_table2 () =
  (* J* column of Table 2, the analytic anchor of the whole calibration *)
  let expect = [ (16, 131.42); (25, 205.35); (36, 295.70); (49, 402.48); (64, 525.69) ] in
  List.iter
    (fun (k, j_star) ->
      check_float_eps 0.005 (Printf.sprintf "J* for K=%d" k) j_star
        (Upper_bound.jobs (aes_problem k)))
    expect
(* note: the paper prints 205.25 for 5x5; every other row and the exact
   formula give 205.35, so 205.25 is a typo in the paper *)

let test_optimal_duplicates_sum_to_k () =
  List.iter
    (fun k ->
      let n_star = Upper_bound.optimal_duplicates (aes_problem k) in
      check_float_eps 1e-9 "sums to K" (float_of_int k)
        (Array.fold_left ( +. ) 0. n_star))
    [ 16; 25; 36; 49; 64 ]

let test_optimal_duplicates_ordering () =
  (* module 3 has the highest normalized energy, module 2 the lowest:
     the paper's design rule says replication follows that order *)
  let n_star = Upper_bound.optimal_duplicates (aes_problem 16) in
  Alcotest.(check bool) "n3 > n1 > n2" true (n_star.(2) > n_star.(0) && n_star.(0) > n_star.(1))

let test_optimal_duplicates_4x4_values () =
  let n_star = Upper_bound.optimal_duplicates (aes_problem 16) in
  check_float_eps 0.01 "n1*" 5.19 n_star.(0);
  check_float_eps 0.01 "n2*" 3.75 n_star.(1);
  check_float_eps 0.01 "n3*" 7.07 n_star.(2)

let test_jobs_for_duplicates () =
  let p = aes_problem 16 in
  (* the checkerboard (4, 4, 8): bottleneck is module 1's 4 nodes *)
  let bound = Upper_bound.jobs_for_duplicates p ~duplicates:[| 4; 4; 8 |] in
  check_float_eps 1e-6 "min pool"
    (4. *. 60000. /. Problem.normalized_energy p ~module_index:0)
    bound;
  Alcotest.(check int) "bottleneck is module 1" 0
    (Upper_bound.bottleneck_module p ~duplicates:[| 4; 4; 8 |]);
  (* any integer mapping is dominated by the real-valued optimum *)
  Alcotest.(check bool) "<= J*" true (bound <= Upper_bound.jobs p)

let test_jobs_for_duplicates_validation () =
  let p = aes_problem 16 in
  Alcotest.check_raises "arity" (Invalid_argument "Upper_bound: duplicates arity mismatch")
    (fun () -> ignore (Upper_bound.jobs_for_duplicates p ~duplicates:[| 1; 2 |]));
  Alcotest.check_raises "zero" (Invalid_argument "Upper_bound: every module needs a node")
    (fun () -> ignore (Upper_bound.jobs_for_duplicates p ~duplicates:[| 0; 8; 8 |]))

let prop_integer_mapping_below_j_star =
  QCheck.Test.make ~name:"thm1: every integer mapping bound <= J*" ~count:200
    QCheck.(triple (int_range 1 30) (int_range 1 30) (int_range 1 30))
    (fun (n1, n2, n3) ->
      let k = n1 + n2 + n3 in
      let p = aes_problem k in
      Upper_bound.jobs_for_duplicates p ~duplicates:[| n1; n2; n3 |]
      <= Upper_bound.jobs p +. 1e-6)

let prop_optimal_duplicates_equalize_pools =
  QCheck.Test.make ~name:"thm1: n_i* equalizes pool lifetimes" ~count:50
    (QCheck.int_range 10 200) (fun k ->
      let p = aes_problem k in
      let n_star = Upper_bound.optimal_duplicates p in
      let pool i =
        n_star.(i) *. p.Problem.battery_budget_pj
        /. Problem.normalized_energy p ~module_index:i
      in
      Float.abs (pool 0 -. pool 1) < 1e-6 && Float.abs (pool 1 -. pool 2) < 1e-6)

(* - Mapping - *)

let test_checkerboard_4x4 () =
  (* the Fig 3(b) mapping: odd-odd -> module 1, even-even -> module 2,
     mixed -> module 3; counts (4, 4, 8) on a 4x4 *)
  let t = Topology.square_mesh ~size:4 () in
  let m = Mapping.checkerboard t in
  Alcotest.(check (array int)) "counts" [| 4; 4; 8 |] (Mapping.duplicates m ~module_count:3);
  let id x y = Topology.node_of_coord t ~x ~y in
  Alcotest.(check int) "(1,1) -> module 1" 0 (Mapping.module_of_node m ~node:(id 1 1));
  Alcotest.(check int) "(2,2) -> module 2" 1 (Mapping.module_of_node m ~node:(id 2 2));
  Alcotest.(check int) "(2,1) -> module 3" 2 (Mapping.module_of_node m ~node:(id 2 1));
  Alcotest.(check int) "(1,2) -> module 3" 2 (Mapping.module_of_node m ~node:(id 1 2))

let test_checkerboard_all_sizes () =
  List.iter
    (fun size ->
      let m = Mapping.checkerboard (Topology.square_mesh ~size ()) in
      let counts = Mapping.duplicates m ~module_count:3 in
      Alcotest.(check int) "covers the mesh" (size * size)
        (counts.(0) + counts.(1) + counts.(2));
      Array.iter (fun n -> Alcotest.(check bool) "every module present" true (n > 0)) counts)
    [ 4; 5; 6; 7; 8 ]

let test_nodes_of_module () =
  let t = Topology.square_mesh ~size:4 () in
  let m = Mapping.checkerboard t in
  let module1 = Mapping.nodes_of_module m ~module_index:0 in
  Alcotest.(check int) "4 module-1 nodes" 4 (List.length module1);
  List.iter
    (fun node -> Alcotest.(check int) "consistent" 0 (Mapping.module_of_node m ~node))
    module1

let test_proportional_mapping () =
  let p = aes_problem 36 in
  let m = Mapping.proportional ~problem:p ~node_count:36 in
  let counts = Mapping.duplicates m ~module_count:3 in
  Alcotest.(check int) "covers" 36 (counts.(0) + counts.(1) + counts.(2));
  Array.iter (fun n -> Alcotest.(check bool) "every module present" true (n > 0)) counts;
  (* replication ordering follows Theorem 1: n3 >= n1 >= n2 *)
  Alcotest.(check bool) "ordering" true (counts.(2) >= counts.(0) && counts.(0) >= counts.(1))

let test_proportional_interleaves () =
  (* the first few node ids should not all belong to one module *)
  let p = aes_problem 36 in
  let m = Mapping.proportional ~problem:p ~node_count:36 in
  let first_six = List.init 6 (fun node -> Mapping.module_of_node m ~node) in
  Alcotest.(check bool) "mixed prefix" true (List.sort_uniq compare first_six |> List.length > 1)

let test_custom_mapping_validation () =
  Alcotest.check_raises "missing module"
    (Invalid_argument "Mapping.custom: module 1 has no node") (fun () ->
      ignore (Mapping.custom ~assignment:[| 0; 0; 2 |] ~module_count:3))

let prop_proportional_counts_near_optimal =
  QCheck.Test.make ~name:"mapping: proportional counts within 1 of n_i*" ~count:100
    (QCheck.int_range 6 120) (fun k ->
      let p = aes_problem k in
      let m = Mapping.proportional ~problem:p ~node_count:k in
      let counts = Mapping.duplicates m ~module_count:3 in
      let n_star = Upper_bound.optimal_duplicates p in
      let ok = ref true in
      Array.iteri
        (fun i n ->
          if Float.abs (float_of_int n -. n_star.(i)) > 1.5 then ok := false)
        counts;
      !ok)

(* - Weight - *)

let test_weight_full_battery_is_neutral () =
  (* f(top level) = 1 for the exponential families: EAR = SDR on a fresh
     platform *)
  List.iter
    (fun w ->
      check_float "factor 1 at full"
        1.
        (Weight.battery_factor w ~level:7 ~levels:8))
    [ Weight.Shortest_distance; Weight.Exponential { q = 2. };
      Weight.Exponential_squared { q = 2. }; Weight.Linear_drain { slope = 1. } ]

let test_weight_exponential_growth () =
  let w = Weight.Exponential { q = 2. } in
  check_float "one level down doubles" 2. (Weight.battery_factor w ~level:6 ~levels:8);
  check_float "empty level" 128. (Weight.battery_factor w ~level:0 ~levels:8);
  let w2 = Weight.Exponential_squared { q = 2. } in
  check_float "squared exponent" 4. (Weight.battery_factor w2 ~level:6 ~levels:8)

let test_weight_sdr_constant () =
  for level = 0 to 7 do
    check_float "SDR ignores battery" 1.
      (Weight.battery_factor Weight.Shortest_distance ~level ~levels:8)
  done

let test_weight_edge_weight () =
  check_float "weight = factor * length" 6.
    (Weight.edge_weight (Weight.Exponential { q = 2. }) ~length_cm:3. ~dst_level:6 ~levels:8)

let test_weight_validation () =
  Alcotest.check_raises "level range"
    (Invalid_argument "Weight.battery_factor: level 8 outside [0, 8)") (fun () ->
      ignore (Weight.battery_factor Weight.Shortest_distance ~level:8 ~levels:8))

let test_weight_names_and_awareness () =
  Alcotest.(check bool) "sdr unaware" false (Weight.is_battery_aware Weight.Shortest_distance);
  Alcotest.(check bool) "ear aware" true
    (Weight.is_battery_aware (Weight.Exponential { q = 2. }));
  Alcotest.(check string) "sdr name" "SDR" (Weight.name Weight.Shortest_distance)

let prop_weight_monotone_in_drain =
  QCheck.Test.make ~name:"weight: factor non-increasing in level" ~count:200
    QCheck.(pair (int_range 2 16) (int_range 0 3))
    (fun (levels, which) ->
      let w =
        match which with
        | 0 -> Weight.Exponential { q = 2. }
        | 1 -> Weight.Exponential_squared { q = 1.5 }
        | 2 -> Weight.Inverse_level { floor = 0.5 }
        | _ -> Weight.Linear_drain { slope = 2. }
      in
      let ok = ref true in
      for level = 0 to levels - 2 do
        if
          Weight.battery_factor w ~level ~levels
          < Weight.battery_factor w ~level:(level + 1) ~levels -. 1e-9
        then ok := false
      done;
      !ok)

(* - Routing table - *)

let test_routing_table_basics () =
  let t = Routing_table.create ~node_count:4 ~module_count:2 in
  Alcotest.(check int) "nodes" 4 (Routing_table.node_count t);
  Alcotest.(check int) "modules" 2 (Routing_table.module_count t);
  Alcotest.(check bool) "starts unreachable" true
    (Routing_table.get t ~node:0 ~module_index:0 = Routing_table.Unreachable);
  Routing_table.set t ~node:0 ~module_index:1
    (Routing_table.Forward { next_hop = 2; destination = 3 });
  Alcotest.(check (option int)) "next hop" (Some 2)
    (Routing_table.next_hop t ~node:0 ~module_index:1);
  Alcotest.(check (option int)) "destination" (Some 3)
    (Routing_table.destination t ~node:0 ~module_index:1)

let test_routing_table_diff () =
  let a = Routing_table.create ~node_count:2 ~module_count:2 in
  let b = Routing_table.create ~node_count:2 ~module_count:2 in
  Alcotest.(check int) "identical" 0 (Routing_table.diff_count a b);
  Routing_table.set b ~node:1 ~module_index:0 Routing_table.Deliver_here;
  Alcotest.(check int) "one change" 1 (Routing_table.diff_count a b);
  Alcotest.(check bool) "equal" false (Routing_table.equal a b)

(* - Router (phases 1-3) - *)

let mesh4 () =
  let t = Topology.square_mesh ~size:4 () in
  (t, Mapping.checkerboard t)

let test_router_weight_matrix_masks_dead () =
  let t, _ = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  snapshot.Router.alive.(1) <- false;
  let w = Router.weight_matrix ~graph:t.Topology.graph ~weight:Weight.Shortest_distance snapshot in
  check_float "edge into dead node cut" infinity (Etx_util.Matrix.get w 0 1);
  check_float "edge out of dead node cut" infinity (Etx_util.Matrix.get w 1 0);
  check_float "living edge kept" 1. (Etx_util.Matrix.get w 0 4)

let test_router_ear_weights_scale_with_level () =
  let t, _ = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  snapshot.Router.battery_level.(1) <- 4;
  let w =
    Router.weight_matrix ~graph:t.Topology.graph
      ~weight:(Weight.Exponential { q = 2. })
      snapshot
  in
  check_float "drained destination costs 2^3" 8. (Etx_util.Matrix.get w 0 1);
  check_float "full destination costs 1" 1. (Etx_util.Matrix.get w 1 0)

let test_router_deliver_here () =
  let t, mapping = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  let table =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  (* node 0 = (1,1) hosts module 1 *)
  Alcotest.(check bool) "deliver here" true
    (Routing_table.get table ~node:0 ~module_index:0 = Routing_table.Deliver_here)

let test_router_forward_reaches_destination () =
  let t, mapping = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  let table =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  (* following the table from any node for any module terminates on a
     host of that module *)
  for node = 0 to 15 do
    for module_index = 0 to 2 do
      let rec follow current steps =
        if steps > 16 then Alcotest.failf "routing loop from %d" node
        else
          match Routing_table.get table ~node:current ~module_index with
          | Routing_table.Deliver_here ->
            Alcotest.(check int) "terminates on the right module" module_index
              (Mapping.module_of_node mapping ~node:current)
          | Routing_table.Forward { next_hop; _ } -> follow next_hop (steps + 1)
          | Routing_table.Unreachable -> Alcotest.failf "unreachable on a live mesh"
      in
      follow node 0
    done
  done

let test_router_ear_equals_sdr_when_full () =
  (* with every battery at the top level the exponential factor is 1, so
     the two algorithms must produce identical tables *)
  let t, mapping = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  let sdr =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  let ear =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:(Weight.Exponential { q = 2. })
      snapshot
  in
  Alcotest.(check bool) "identical tables" true (Routing_table.equal sdr ear)

let test_router_steers_around_drained_node () =
  (* two module-3 candidates at equal distance: EAR must pick the one
     with the fuller battery, SDR the one with the smaller id *)
  let t, mapping = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  (* node 0 = (1,1): neighbours 1 = (2,1) and 4 = (1,2), both module 3 *)
  snapshot.Router.battery_level.(1) <- 0;
  let sdr =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  let ear =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:(Weight.Exponential { q = 2. })
      snapshot
  in
  Alcotest.(check (option int)) "SDR ignores the battery" (Some 1)
    (Routing_table.next_hop sdr ~node:0 ~module_index:2);
  Alcotest.(check (option int)) "EAR avoids the drained node" (Some 4)
    (Routing_table.next_hop ear ~node:0 ~module_index:2)

let test_router_unreachable_when_pool_dead () =
  let t, mapping = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  (* kill every module-2 node *)
  List.iter
    (fun node -> snapshot.Router.alive.(node) <- false)
    (Mapping.nodes_of_module mapping ~module_index:1);
  let table =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  Alcotest.(check bool) "module 2 unreachable" true
    (Routing_table.get table ~node:0 ~module_index:1 = Routing_table.Unreachable);
  Alcotest.(check bool) "module 3 still routable" true
    (Routing_table.get table ~node:0 ~module_index:2 <> Routing_table.Unreachable)

let test_router_dead_nodes_get_no_entries () =
  let t, mapping = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  snapshot.Router.alive.(5) <- false;
  let table =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  for module_index = 0 to 2 do
    Alcotest.(check bool) "dead node unreachable" true
      (Routing_table.get table ~node:5 ~module_index = Routing_table.Unreachable)
  done

let test_router_locked_port_avoidance () =
  (* node 0's deadlocked port towards 1 forces the detour via 4 for
     module 3, even though 1 is the nearer tie-break *)
  let t, mapping = mesh4 () in
  let snapshot =
    { (Router.full_snapshot ~node_count:16 ~levels:8) with Router.locked_ports = [ (0, 1) ] }
  in
  let table =
    Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  Alcotest.(check (option int)) "detours around the lock" (Some 4)
    (Routing_table.next_hop table ~node:0 ~module_index:2)

let test_router_locked_port_fallback () =
  (* when every viable first hop is locked, the lock is overridden
     rather than declaring the module unreachable *)
  let line = Topology.line ~length:3 () in
  let mapping = Mapping.custom ~assignment:[| 0; 1; 2 |] ~module_count:3 in
  let snapshot =
    { (Router.full_snapshot ~node_count:3 ~levels:8) with Router.locked_ports = [ (0, 1) ] }
  in
  let table =
    Router.compute ~graph:line.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  Alcotest.(check (option int)) "takes the only path anyway" (Some 1)
    (Routing_table.next_hop table ~node:0 ~module_index:2)

let test_router_workspace_matches_fresh_compute () =
  (* a degraded snapshot exercising every membership set on the fast
     path: drained batteries, a dead node, locked ports, failed links *)
  let t, mapping = mesh4 () in
  let graph = t.Topology.graph in
  let weight = Weight.Exponential { q = 2. } in
  let full = Router.full_snapshot ~node_count:16 ~levels:8 in
  let degraded = Router.full_snapshot ~node_count:16 ~levels:8 in
  degraded.Router.battery_level.(5) <- 1;
  degraded.Router.battery_level.(10) <- 2;
  degraded.Router.alive.(15) <- false;
  let degraded =
    {
      degraded with
      Router.locked_ports = [ (0, 1); (5, 6) ];
      failed_links = [ (1, 2); (2, 1); (9, 10) ];
    }
  in
  let fresh snapshot =
    Router.compute ~graph ~mapping ~module_count:3 ~weight snapshot
  in
  let workspace = Router.create_workspace () in
  let reused snapshot =
    Router.compute ~workspace ~graph ~mapping ~module_count:3 ~weight snapshot
  in
  Alcotest.(check bool) "degraded snapshot" true
    (Routing_table.equal (fresh degraded) (reused degraded));
  (* the same workspace across changing snapshots: no state may leak *)
  Alcotest.(check bool) "full snapshot after reuse" true
    (Routing_table.equal (fresh full) (reused full));
  Alcotest.(check bool) "degraded again" true
    (Routing_table.equal (fresh degraded) (reused degraded));
  (* and the broken 1 -> 2 interconnect is never used as a next hop *)
  let table = reused degraded in
  for module_index = 0 to 2 do
    match Routing_table.next_hop table ~node:1 ~module_index with
    | Some 2 -> Alcotest.failf "module %d routed over the failed 1 -> 2 link" module_index
    | Some _ | None -> ()
  done

let test_router_snapshot_validation () =
  let t, mapping = mesh4 () in
  let snapshot = Router.full_snapshot ~node_count:4 ~levels:8 in
  Alcotest.check_raises "arity" (Invalid_argument "Router: snapshot arity differs from the graph")
    (fun () ->
      ignore
        (Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
           ~weight:Weight.Shortest_distance snapshot))

let prop_router_tables_terminate =
  (* on random live meshes with random levels, following any table entry
     terminates on a correct host *)
  QCheck.Test.make ~name:"router: tables always terminate on the right module" ~count:50
    QCheck.(pair (int_range 3 6) (int_range 0 1000))
    (fun (size, seed) ->
      let t = Topology.square_mesh ~size () in
      let mapping = Mapping.checkerboard t in
      let n = size * size in
      let prng = Etx_util.Prng.create ~seed in
      let snapshot = Router.full_snapshot ~node_count:n ~levels:8 in
      for i = 0 to n - 1 do
        snapshot.Router.battery_level.(i) <- Etx_util.Prng.int prng ~bound:8
      done;
      let table =
        Router.compute ~graph:t.Topology.graph ~mapping ~module_count:3
          ~weight:(Weight.Exponential { q = 2. })
          snapshot
      in
      let ok = ref true in
      for node = 0 to n - 1 do
        for module_index = 0 to 2 do
          let rec follow current steps =
            if steps > n then ok := false
            else
              match Routing_table.get table ~node:current ~module_index with
              | Routing_table.Deliver_here ->
                if Mapping.module_of_node mapping ~node:current <> module_index then
                  ok := false
              | Routing_table.Forward { next_hop; _ } -> follow next_hop (steps + 1)
              | Routing_table.Unreachable -> ok := false
          in
          follow node 0
        done
      done;
      !ok)

(* - Policy - *)

let test_policy_constructors () =
  Alcotest.(check bool) "ear aware" true (Policy.is_battery_aware (Policy.ear ()));
  Alcotest.(check bool) "sdr unaware" false (Policy.is_battery_aware (Policy.sdr ()));
  Alcotest.(check int) "default levels" 8 (Policy.ear ()).Policy.levels;
  Alcotest.(check string) "sdr name" "SDR" (Policy.sdr ()).Policy.name

let test_policy_validation () =
  Alcotest.check_raises "q" (Invalid_argument "Policy.ear: Q must be positive") (fun () ->
      ignore (Policy.ear ~q:0. ()));
  Alcotest.check_raises "levels" (Invalid_argument "Policy: need at least two battery levels")
    (fun () -> ignore (Policy.sdr ~levels:1 ()))

let suite =
  [
    ( "routing/problem",
      [
        Alcotest.test_case "aes parameters" `Quick test_problem_aes_parameters;
        Alcotest.test_case "normalized energy" `Quick test_problem_normalized_energy;
        Alcotest.test_case "validation" `Quick test_problem_validation;
      ] );
    ( "routing/theorem1",
      [
        Alcotest.test_case "J* matches Table 2" `Quick test_upper_bound_matches_table2;
        Alcotest.test_case "n* sums to K" `Quick test_optimal_duplicates_sum_to_k;
        Alcotest.test_case "n* ordering" `Quick test_optimal_duplicates_ordering;
        Alcotest.test_case "n* 4x4 values" `Quick test_optimal_duplicates_4x4_values;
        Alcotest.test_case "mapping bound" `Quick test_jobs_for_duplicates;
        Alcotest.test_case "mapping bound validation" `Quick test_jobs_for_duplicates_validation;
        QCheck_alcotest.to_alcotest prop_integer_mapping_below_j_star;
        QCheck_alcotest.to_alcotest prop_optimal_duplicates_equalize_pools;
      ] );
    ( "routing/mapping",
      [
        Alcotest.test_case "checkerboard 4x4" `Quick test_checkerboard_4x4;
        Alcotest.test_case "checkerboard all sizes" `Quick test_checkerboard_all_sizes;
        Alcotest.test_case "nodes of module" `Quick test_nodes_of_module;
        Alcotest.test_case "proportional" `Quick test_proportional_mapping;
        Alcotest.test_case "proportional interleaves" `Quick test_proportional_interleaves;
        Alcotest.test_case "custom validation" `Quick test_custom_mapping_validation;
        QCheck_alcotest.to_alcotest prop_proportional_counts_near_optimal;
      ] );
    ( "routing/weight",
      [
        Alcotest.test_case "full battery neutral" `Quick test_weight_full_battery_is_neutral;
        Alcotest.test_case "exponential growth" `Quick test_weight_exponential_growth;
        Alcotest.test_case "SDR constant" `Quick test_weight_sdr_constant;
        Alcotest.test_case "edge weight" `Quick test_weight_edge_weight;
        Alcotest.test_case "validation" `Quick test_weight_validation;
        Alcotest.test_case "names and awareness" `Quick test_weight_names_and_awareness;
        QCheck_alcotest.to_alcotest prop_weight_monotone_in_drain;
      ] );
    ( "routing/table",
      [
        Alcotest.test_case "basics" `Quick test_routing_table_basics;
        Alcotest.test_case "diff count" `Quick test_routing_table_diff;
      ] );
    ( "routing/router",
      [
        Alcotest.test_case "weight matrix masks dead" `Quick test_router_weight_matrix_masks_dead;
        Alcotest.test_case "EAR weights scale" `Quick test_router_ear_weights_scale_with_level;
        Alcotest.test_case "deliver here" `Quick test_router_deliver_here;
        Alcotest.test_case "forwarding terminates correctly" `Quick
          test_router_forward_reaches_destination;
        Alcotest.test_case "EAR = SDR on full batteries" `Quick
          test_router_ear_equals_sdr_when_full;
        Alcotest.test_case "steers around drained node" `Quick
          test_router_steers_around_drained_node;
        Alcotest.test_case "unreachable when pool dead" `Quick
          test_router_unreachable_when_pool_dead;
        Alcotest.test_case "dead nodes get no entries" `Quick
          test_router_dead_nodes_get_no_entries;
        Alcotest.test_case "locked port avoidance" `Quick test_router_locked_port_avoidance;
        Alcotest.test_case "locked port fallback" `Quick test_router_locked_port_fallback;
        Alcotest.test_case "workspace matches fresh compute" `Quick
          test_router_workspace_matches_fresh_compute;
        Alcotest.test_case "snapshot validation" `Quick test_router_snapshot_validation;
        QCheck_alcotest.to_alcotest prop_router_tables_terminate;
      ] );
    ( "routing/policy",
      [
        Alcotest.test_case "constructors" `Quick test_policy_constructors;
        Alcotest.test_case "validation" `Quick test_policy_validation;
      ] );
  ]
