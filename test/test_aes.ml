(* Tests for etx_aes: GF(2^8), S-box, key schedule, round
   transformations, the full cipher against FIPS-197 vectors, and the
   paper's module partitioning. *)

module Galois = Etx_aes.Galois
module Sbox = Etx_aes.Sbox
module Key_schedule = Etx_aes.Key_schedule
module Block = Etx_aes.Block
module Aes = Etx_aes.Aes
module Partition = Etx_aes.Partition

let byte = QCheck.int_range 0 255

(* - Galois - *)

let test_galois_xtime () =
  (* FIPS-197 4.2.1: {57} * {02} = {ae}, and the reduction case *)
  Alcotest.(check int) "57*02" 0xAE (Galois.xtime 0x57);
  Alcotest.(check int) "ae*02" 0x47 (Galois.xtime 0xAE);
  Alcotest.(check int) "80*02 reduces" 0x1B (Galois.xtime 0x80)

let test_galois_mul_known () =
  (* FIPS-197 4.2: {57} * {83} = {c1}; 4.2.1: {57} * {13} = {fe} *)
  Alcotest.(check int) "57*83" 0xC1 (Galois.mul 0x57 0x83);
  Alcotest.(check int) "57*13" 0xFE (Galois.mul 0x57 0x13);
  Alcotest.(check int) "identity" 0x57 (Galois.mul 0x57 0x01);
  Alcotest.(check int) "zero" 0 (Galois.mul 0x57 0x00)

let test_galois_inverse_convention () =
  Alcotest.(check int) "inverse of 0 is 0" 0 (Galois.inverse 0);
  Alcotest.(check int) "inverse of 1 is 1" 1 (Galois.inverse 1)

let test_galois_pow () =
  Alcotest.(check int) "a^0" 1 (Galois.pow 0x57 0);
  Alcotest.(check int) "a^1" 0x57 (Galois.pow 0x57 1);
  Alcotest.(check int) "a^2 = a*a" (Galois.mul 0x57 0x57) (Galois.pow 0x57 2);
  Alcotest.check_raises "negative" (Invalid_argument "Galois.pow: negative exponent")
    (fun () -> ignore (Galois.pow 2 (-1)))

let prop_galois_mul_commutative =
  QCheck.Test.make ~name:"galois: multiplication commutes" ~count:500 (QCheck.pair byte byte)
    (fun (a, b) -> Galois.mul a b = Galois.mul b a)

let prop_galois_mul_associative =
  QCheck.Test.make ~name:"galois: multiplication associates" ~count:500
    (QCheck.triple byte byte byte) (fun (a, b, c) ->
      Galois.mul a (Galois.mul b c) = Galois.mul (Galois.mul a b) c)

let prop_galois_distributive =
  QCheck.Test.make ~name:"galois: distributes over xor" ~count:500
    (QCheck.triple byte byte byte) (fun (a, b, c) ->
      Galois.mul a (Galois.add b c) = Galois.add (Galois.mul a b) (Galois.mul a c))

let prop_galois_inverse =
  QCheck.Test.make ~name:"galois: a * a^-1 = 1 for a <> 0" ~count:255
    (QCheck.int_range 1 255) (fun a -> Galois.mul a (Galois.inverse a) = 1)

(* - S-box - *)

let test_sbox_known_values () =
  (* FIPS-197 Figure 7 spot checks *)
  Alcotest.(check int) "S(00)" 0x63 (Sbox.forward 0x00);
  Alcotest.(check int) "S(53)" 0xED (Sbox.forward 0x53);
  Alcotest.(check int) "S(ff)" 0x16 (Sbox.forward 0xFF);
  Alcotest.(check int) "S(10)" 0xCA (Sbox.forward 0x10)

let test_sbox_roundtrip () =
  for b = 0 to 255 do
    Alcotest.(check int) "inverse(forward)" b (Sbox.inverse (Sbox.forward b))
  done

let test_sbox_is_permutation () =
  let seen = Array.make 256 false in
  for b = 0 to 255 do
    seen.(Sbox.forward b) <- true
  done;
  Alcotest.(check bool) "bijective" true (Array.for_all Fun.id seen)

let test_sbox_no_fixed_points () =
  (* the AES S-box has no fixed points and no opposite fixed points *)
  for b = 0 to 255 do
    Alcotest.(check bool) "no fixed point" true (Sbox.forward b <> b);
    Alcotest.(check bool) "no anti-fixed point" true (Sbox.forward b <> b lxor 0xFF)
  done

let test_sbox_bounds () =
  Alcotest.check_raises "range" (Invalid_argument "Sbox: byte out of range") (fun () ->
      ignore (Sbox.forward 256))

let test_sbox_table_copies () =
  let t = Sbox.forward_table () in
  t.(0) <- 0;
  Alcotest.(check int) "table mutation harmless" 0x63 (Sbox.forward 0x00)

(* - Key schedule - *)

let fips_key = "2b7e151628aed2a6abf7158809cf4f3c"

let test_key_schedule_appendix_a1 () =
  (* FIPS-197 Appendix A.1 expansion of the 128-bit key *)
  let ks = Key_schedule.expand ~key:(Block.of_hex fips_key) in
  Alcotest.(check int) "w0" 0x2b7e1516 (Key_schedule.word ks 0);
  Alcotest.(check int) "w3" 0x09cf4f3c (Key_schedule.word ks 3);
  Alcotest.(check int) "w4" 0xa0fafe17 (Key_schedule.word ks 4);
  Alcotest.(check int) "w9" 0x7a96b943 (Key_schedule.word ks 9);
  Alcotest.(check int) "w10" 0x5935807a (Key_schedule.word ks 10);
  Alcotest.(check int) "w43" 0xb6630ca6 (Key_schedule.word ks 43)

let test_key_schedule_sizes () =
  let check_size bytes nr nk words =
    let ks = Key_schedule.expand ~key:(Bytes.make bytes '\000') in
    Alcotest.(check int) "rounds" nr (Key_schedule.rounds ks);
    Alcotest.(check int) "nk" nk (Key_schedule.key_length_words ks);
    Alcotest.(check int) "words" words (Key_schedule.word_count ks)
  in
  check_size 16 10 4 44;
  check_size 24 12 6 52;
  check_size 32 14 8 60

let test_key_schedule_appendix_a2_a3 () =
  (* first expanded word beyond the key for the 192- and 256-bit vectors *)
  let ks192 =
    Key_schedule.expand
      ~key:(Block.of_hex "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b")
  in
  Alcotest.(check int) "A.2 w6" 0xfe0c91f7 (Key_schedule.word ks192 6);
  let ks256 =
    Key_schedule.expand
      ~key:
        (Block.of_hex
           "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
  in
  Alcotest.(check int) "A.3 w8" 0x9ba35411 (Key_schedule.word ks256 8)

let test_key_schedule_bad_length () =
  Alcotest.check_raises "bad key" (Invalid_argument "Key_schedule.expand: bad key length 5")
    (fun () -> ignore (Key_schedule.expand ~key:(Bytes.make 5 'x')))

let test_key_schedule_rcon () =
  Alcotest.(check int) "rcon 1" 0x01 (Key_schedule.rcon 1);
  Alcotest.(check int) "rcon 8" 0x80 (Key_schedule.rcon 8);
  Alcotest.(check int) "rcon 9 reduces" 0x1B (Key_schedule.rcon 9);
  Alcotest.(check int) "rcon 10" 0x36 (Key_schedule.rcon 10)

let test_round_key_layout () =
  let ks = Key_schedule.expand ~key:(Block.of_hex fips_key) in
  (* round 0 key = the cipher key itself, in state layout *)
  Alcotest.(check string) "round 0 = key" fips_key
    (Block.to_hex (Key_schedule.round_key ks ~round:0));
  Alcotest.check_raises "round range"
    (Invalid_argument "Key_schedule.round_key: round out of range") (fun () ->
      ignore (Key_schedule.round_key ks ~round:11))

(* - Block transformations - *)

let test_shift_rows_permutation () =
  (* state bytes 0..15 column-major; row r rotates left by r *)
  let state = Bytes.init 16 Char.chr in
  let shifted = Block.shift_rows state in
  (* row 0 untouched: positions 0, 4, 8, 12 *)
  Alcotest.(check int) "row0" 0 (Char.code (Bytes.get shifted 0));
  (* row 1 rotates: state'[1, 0] = state[1, 1] = byte 5 *)
  Alcotest.(check int) "row1" 5 (Char.code (Bytes.get shifted 1));
  (* row 2: state'[2, 0] = state[2, 2] = byte 10 *)
  Alcotest.(check int) "row2" 10 (Char.code (Bytes.get shifted 2));
  (* row 3: state'[3, 0] = state[3, 3] = byte 15 *)
  Alcotest.(check int) "row3" 15 (Char.code (Bytes.get shifted 3))

let test_mix_columns_known () =
  (* well-known MixColumns test column db 13 53 45 -> 8e 4d a1 bc *)
  let state = Bytes.make 16 '\000' in
  List.iteri (fun i b -> Bytes.set state i (Char.chr b)) [ 0xdb; 0x13; 0x53; 0x45 ];
  let mixed = Block.mix_columns state in
  let column = List.init 4 (fun i -> Char.code (Bytes.get mixed i)) in
  Alcotest.(check (list int)) "mixed column" [ 0x8e; 0x4d; 0xa1; 0xbc ] column

let test_add_round_key_self_inverse () =
  let state = Block.of_hex "00112233445566778899aabbccddeeff" in
  let key = Block.of_hex "0f0e0d0c0b0a09080706050403020100" in
  let twice = Block.add_round_key (Block.add_round_key state ~key) ~key in
  Alcotest.(check string) "xor twice" (Block.to_hex state) (Block.to_hex twice)

let test_block_validation () =
  Alcotest.check_raises "state size" (Invalid_argument "Block: state must be 16 bytes")
    (fun () -> ignore (Block.sub_bytes (Bytes.make 15 'a')));
  Alcotest.check_raises "hex odd" (Invalid_argument "Block.of_hex: odd length") (fun () ->
      ignore (Block.of_hex "abc"));
  Alcotest.check_raises "hex digit" (Invalid_argument "Block.of_hex: bad digit")
    (fun () -> ignore (Block.of_hex "zz"))

let test_hex_roundtrip () =
  let hex = "00112233445566778899aabbccddeeff" in
  Alcotest.(check string) "roundtrip" hex (Block.to_hex (Block.of_hex hex))

let bytes16 =
  QCheck.make
    ~print:(fun b -> Block.to_hex b)
    QCheck.Gen.(map Bytes.of_string (string_size ~gen:char (return 16)))

let prop_inverse_transforms =
  QCheck.Test.make ~name:"block: every transformation inverts" ~count:200 bytes16
    (fun state ->
      Bytes.equal (Block.inv_sub_bytes (Block.sub_bytes state)) state
      && Bytes.equal (Block.inv_shift_rows (Block.shift_rows state)) state
      && Bytes.equal (Block.inv_mix_columns (Block.mix_columns state)) state)

let prop_transforms_pure =
  QCheck.Test.make ~name:"block: transformations do not mutate input" ~count:100 bytes16
    (fun state ->
      let snapshot = Bytes.copy state in
      ignore (Block.sub_bytes state);
      ignore (Block.shift_rows state);
      ignore (Block.mix_columns state);
      Bytes.equal snapshot state)

(* - Full cipher - *)

let test_aes_fips_appendix_b () =
  Alcotest.(check string) "appendix B" "3925841d02dc09fbdc118597196a0b32"
    (Aes.encrypt_hex ~key:fips_key ~plaintext:"3243f6a8885a308d313198a2e0370734")

let test_aes_fips_c1 () =
  Alcotest.(check string) "AES-128" "69c4e0d86a7b0430d8cdb78070b4c55a"
    (Aes.encrypt_hex ~key:"000102030405060708090a0b0c0d0e0f"
       ~plaintext:"00112233445566778899aabbccddeeff")

let test_aes_fips_c2 () =
  Alcotest.(check string) "AES-192" "dda97ca4864cdfe06eaf70a0ec0d7191"
    (Aes.encrypt_hex
       ~key:"000102030405060708090a0b0c0d0e0f1011121314151617"
       ~plaintext:"00112233445566778899aabbccddeeff")

let test_aes_fips_c3 () =
  Alcotest.(check string) "AES-256" "8ea2b7ca516745bfeafc49904b496089"
    (Aes.encrypt_hex
       ~key:"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
       ~plaintext:"00112233445566778899aabbccddeeff")

let test_aes_decrypt_known () =
  let key = Aes.key_of_hex "000102030405060708090a0b0c0d0e0f" in
  let ct = Block.of_hex "69c4e0d86a7b0430d8cdb78070b4c55a" in
  Alcotest.(check string) "decrypt" "00112233445566778899aabbccddeeff"
    (Block.to_hex (Aes.decrypt_block key ct))

let test_aes_rounds () =
  Alcotest.(check int) "128-bit rounds" 10
    (Aes.rounds (Aes.key_of_hex "000102030405060708090a0b0c0d0e0f"))

let prop_aes_roundtrip =
  QCheck.Test.make ~name:"aes: decrypt (encrypt x) = x" ~count:100
    (QCheck.pair bytes16 bytes16) (fun (key_bytes, plaintext) ->
      let key = Aes.key_of_bytes key_bytes in
      Bytes.equal (Aes.decrypt_block key (Aes.encrypt_block key plaintext)) plaintext)

let prop_aes_injective_in_plaintext =
  QCheck.Test.make ~name:"aes: distinct plaintexts give distinct ciphertexts" ~count:100
    (QCheck.triple bytes16 bytes16 bytes16) (fun (key_bytes, p1, p2) ->
      let key = Aes.key_of_bytes key_bytes in
      Bytes.equal p1 p2
      || not (Bytes.equal (Aes.encrypt_block key p1) (Aes.encrypt_block key p2)))

(* - Partitioning - *)

let test_partition_act_counts () =
  (* the paper's f_i = 10, 9, 11 (Sec 3) *)
  Alcotest.(check int) "f1" 10 (Partition.acts_per_job Partition.Subbytes_shiftrows);
  Alcotest.(check int) "f2" 9 (Partition.acts_per_job Partition.Mixcolumns);
  Alcotest.(check int) "f3" 11 (Partition.acts_per_job Partition.Keyexpansion_addroundkey)

let test_partition_plan_structure () =
  Alcotest.(check int) "30 acts" 30 (Array.length Partition.job_plan);
  (* counts in the plan match f_i *)
  let count kind =
    Array.fold_left
      (fun acc op -> if op.Partition.kind = kind then acc + 1 else acc)
      0 Partition.job_plan
  in
  Alcotest.(check int) "plan f1" 10 (count Partition.Subbytes_shiftrows);
  Alcotest.(check int) "plan f2" 9 (count Partition.Mixcolumns);
  Alcotest.(check int) "plan f3" 11 (count Partition.Keyexpansion_addroundkey);
  (* steps are sequential *)
  Array.iteri (fun i op -> Alcotest.(check int) "step" i op.Partition.step) Partition.job_plan

let test_partition_consecutive_acts_alternate_modules () =
  (* guarantees every act is followed by an act of communication to a
     different node type, as the paper's operation definition assumes *)
  let kinds = Partition.module_sequence in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "no consecutive same module" true (a <> b);
      check rest
    | _ -> ()
  in
  check kinds

let test_partition_first_and_last () =
  let plan = Partition.job_plan in
  Alcotest.(check bool) "starts with AddRoundKey(0)" true
    (plan.(0).Partition.kind = Partition.Keyexpansion_addroundkey && plan.(0).round = 0);
  Alcotest.(check bool) "ends with AddRoundKey(10)" true
    (plan.(29).Partition.kind = Partition.Keyexpansion_addroundkey && plan.(29).round = 10)

let test_partition_next_op () =
  Alcotest.(check bool) "op at 0" true (Partition.next_op ~step:0 <> None);
  Alcotest.(check bool) "end of plan" true (Partition.next_op ~step:30 = None);
  Alcotest.check_raises "negative" (Invalid_argument "Partition.next_op: negative step")
    (fun () -> ignore (Partition.next_op ~step:(-1)))

let test_partition_module_indices () =
  List.iter
    (fun kind ->
      Alcotest.(check bool) "roundtrip" true
        (Partition.module_of_index (Partition.module_index kind) = kind))
    [ Partition.Subbytes_shiftrows; Partition.Mixcolumns; Partition.Keyexpansion_addroundkey ];
  Alcotest.check_raises "range" (Invalid_argument "Partition.module_of_index: 3")
    (fun () -> ignore (Partition.module_of_index 3))

let prop_partition_plan_equals_cipher =
  QCheck.Test.make ~name:"partition: distributed plan computes AES exactly" ~count:100
    (QCheck.pair bytes16 bytes16) (fun (key_bytes, plaintext) ->
      let key = Aes.key_of_bytes key_bytes in
      let via_plan = Partition.run_plan ~schedule:(Aes.schedule key) plaintext in
      Bytes.equal via_plan (Aes.encrypt_block key plaintext))

let suite =
  [
    ( "aes/galois",
      [
        Alcotest.test_case "xtime" `Quick test_galois_xtime;
        Alcotest.test_case "mul known values" `Quick test_galois_mul_known;
        Alcotest.test_case "inverse convention" `Quick test_galois_inverse_convention;
        Alcotest.test_case "pow" `Quick test_galois_pow;
        QCheck_alcotest.to_alcotest prop_galois_mul_commutative;
        QCheck_alcotest.to_alcotest prop_galois_mul_associative;
        QCheck_alcotest.to_alcotest prop_galois_distributive;
        QCheck_alcotest.to_alcotest prop_galois_inverse;
      ] );
    ( "aes/sbox",
      [
        Alcotest.test_case "known values" `Quick test_sbox_known_values;
        Alcotest.test_case "roundtrip" `Quick test_sbox_roundtrip;
        Alcotest.test_case "is a permutation" `Quick test_sbox_is_permutation;
        Alcotest.test_case "no fixed points" `Quick test_sbox_no_fixed_points;
        Alcotest.test_case "bounds" `Quick test_sbox_bounds;
        Alcotest.test_case "table copies" `Quick test_sbox_table_copies;
      ] );
    ( "aes/key-schedule",
      [
        Alcotest.test_case "FIPS A.1 expansion" `Quick test_key_schedule_appendix_a1;
        Alcotest.test_case "key sizes" `Quick test_key_schedule_sizes;
        Alcotest.test_case "FIPS A.2/A.3 spots" `Quick test_key_schedule_appendix_a2_a3;
        Alcotest.test_case "bad length" `Quick test_key_schedule_bad_length;
        Alcotest.test_case "rcon" `Quick test_key_schedule_rcon;
        Alcotest.test_case "round key layout" `Quick test_round_key_layout;
      ] );
    ( "aes/block",
      [
        Alcotest.test_case "shift rows permutation" `Quick test_shift_rows_permutation;
        Alcotest.test_case "mix columns known column" `Quick test_mix_columns_known;
        Alcotest.test_case "add round key self-inverse" `Quick test_add_round_key_self_inverse;
        Alcotest.test_case "validation" `Quick test_block_validation;
        Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        QCheck_alcotest.to_alcotest prop_inverse_transforms;
        QCheck_alcotest.to_alcotest prop_transforms_pure;
      ] );
    ( "aes/cipher",
      [
        Alcotest.test_case "FIPS appendix B" `Quick test_aes_fips_appendix_b;
        Alcotest.test_case "FIPS C.1 (128)" `Quick test_aes_fips_c1;
        Alcotest.test_case "FIPS C.2 (192)" `Quick test_aes_fips_c2;
        Alcotest.test_case "FIPS C.3 (256)" `Quick test_aes_fips_c3;
        Alcotest.test_case "decrypt known" `Quick test_aes_decrypt_known;
        Alcotest.test_case "rounds" `Quick test_aes_rounds;
        QCheck_alcotest.to_alcotest prop_aes_roundtrip;
        QCheck_alcotest.to_alcotest prop_aes_injective_in_plaintext;
      ] );
    ( "aes/partition",
      [
        Alcotest.test_case "act counts = f_i" `Quick test_partition_act_counts;
        Alcotest.test_case "plan structure" `Quick test_partition_plan_structure;
        Alcotest.test_case "acts alternate modules" `Quick
          test_partition_consecutive_acts_alternate_modules;
        Alcotest.test_case "first and last acts" `Quick test_partition_first_and_last;
        Alcotest.test_case "next_op" `Quick test_partition_next_op;
        Alcotest.test_case "module indices" `Quick test_partition_module_indices;
        QCheck_alcotest.to_alcotest prop_partition_plan_equals_cipher;
      ] );
  ]
