(* Tests for Etx_util.Json, the service's hand-rolled wire syntax.  The
   load-bearing properties: parsing is strict (adversarial input raises
   Parse_error, never anything else), printing is deterministic and
   compact, and print-then-parse is the identity. *)

module Json = Etx_util.Json

let json_testable =
  Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Json.to_string j)) ( = )

let parses name input expected =
  Alcotest.(check json_testable) name expected (Json.parse input)

let rejects name input =
  match Json.parse input with
  | json -> Alcotest.failf "%s: accepted as %s" name (Json.to_string json)
  | exception Json.Parse_error _ -> ()

let test_scalars () =
  parses "null" "null" Json.Null;
  parses "true" "true" (Json.Bool true);
  parses "false" "false" (Json.Bool false);
  parses "int" "42" (Json.Int 42);
  parses "negative int" "-7" (Json.Int (-7));
  parses "float" "1.5" (Json.Float 1.5);
  parses "exponent" "2e3" (Json.Float 2000.);
  parses "negative exponent" "-1.25e-2" (Json.Float (-0.0125));
  parses "string" {|"hi"|} (Json.String "hi");
  parses "leading whitespace" "  \t\n 3" (Json.Int 3)

let test_containers () =
  parses "empty list" "[]" (Json.List []);
  parses "empty obj" "{}" (Json.Obj []);
  parses "mixed list" {|[1,"a",null,[true]]|}
    (Json.List
       [ Json.Int 1; Json.String "a"; Json.Null; Json.List [ Json.Bool true ] ]);
  parses "nested obj" {|{"a":{"b":[1,2]},"c":0}|}
    (Json.Obj
       [
         ("a", Json.Obj [ ("b", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
         ("c", Json.Int 0);
       ])

let test_escapes () =
  parses "escapes" {|"a\"b\\c\/d\n\t\r\b\f"|} (Json.String "a\"b\\c/d\n\t\r\b\012");
  parses "unicode bmp" {|"Aé"|} (Json.String "A\xc3\xa9");
  parses "surrogate pair" {|"😀"|} (Json.String "\xf0\x9f\x98\x80");
  rejects "lone high surrogate" {|"\ud83d"|};
  rejects "bad escape" {|"\q"|};
  rejects "bare control char" "\"a\x01b\"";
  rejects "unterminated string" {|"abc|}

let test_adversarial () =
  rejects "empty input" "";
  rejects "trailing garbage" "1 2";
  rejects "trailing comma in list" "[1,]";
  rejects "trailing comma in obj" {|{"a":1,}|};
  rejects "missing colon" {|{"a" 1}|};
  rejects "unquoted key" "{a:1}";
  rejects "single quotes" "{'a':1}";
  rejects "bare word" "nulll";
  rejects "leading zero" "01";
  rejects "lone minus" "-";
  rejects "incomplete exponent" "1e";
  rejects "unclosed list" "[1,2";
  rejects "unclosed obj" {|{"a":1|};
  (* nesting cap: 300 levels must not blow the stack *)
  let deep = String.concat "" (List.init 300 (fun _ -> "[")) in
  rejects "nesting bomb" deep;
  (* 100 levels are fine *)
  let ok = String.concat "" (List.init 100 (fun _ -> "[")) ^ "1"
           ^ String.concat "" (List.init 100 (fun _ -> "]")) in
  ignore (Json.parse ok)

let test_print_compact_deterministic () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"\\\n");
        ("n", Json.Int (-3));
        ("f", Json.Float 0.1);
        ("l", Json.List [ Json.Null; Json.Bool false ]);
      ]
  in
  let printed = Json.to_string j in
  Alcotest.(check string) "stable bytes" printed (Json.to_string j);
  Alcotest.(check bool) "no spaces" false (String.contains printed ' ');
  Alcotest.(check json_testable) "round trip" j (Json.parse printed)

let test_float_repr () =
  List.iter
    (fun f ->
      let printed = Json.to_string (Json.Float f) in
      match Json.parse printed with
      | Json.Float g ->
        Alcotest.(check (float 0.)) (Printf.sprintf "round trip %s" printed) f g
      | Json.Int g ->
        Alcotest.(check (float 0.)) (Printf.sprintf "as int %s" printed) f (float_of_int g)
      | _ -> Alcotest.fail "not a number")
    [ 0.; 1.; -1.5; 0.1; 1e-300; 1.7976931348623157e308; 3.141592653589793 ];
  (match Json.to_string (Json.Float Float.nan) with
  | _ -> Alcotest.fail "nan accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check json_testable) "lenient nan" (Json.String "nan")
    (Json.float_lenient Float.nan);
  Alcotest.(check json_testable) "lenient inf" (Json.String "inf")
    (Json.float_lenient Float.infinity);
  Alcotest.(check json_testable) "lenient -inf" (Json.String "-inf")
    (Json.float_lenient Float.neg_infinity);
  Alcotest.(check json_testable) "lenient finite" (Json.Float 2.5)
    (Json.float_lenient 2.5)

let test_accessors () =
  let obj = Json.parse {|{"a":1,"b":2.5,"c":"x","d":[1,2],"e":true,"f":3.0}|} in
  Alcotest.(check (option int)) "member int" (Some 1)
    (Option.bind (Json.member "a" obj) Json.to_int);
  Alcotest.(check (option int)) "integral float as int" (Some 3)
    (Option.bind (Json.member "f" obj) Json.to_int);
  Alcotest.(check (option int)) "non-integral float not int" None
    (Option.bind (Json.member "b" obj) Json.to_int);
  Alcotest.(check (option (float 0.))) "int as float" (Some 1.)
    (Option.bind (Json.member "a" obj) Json.to_float);
  Alcotest.(check (option string)) "string" (Some "x")
    (Option.bind (Json.member "c" obj) Json.to_str);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (Json.member "e" obj) Json.to_bool);
  Alcotest.(check (option (list int))) "int list" (Some [ 1; 2 ])
    (Option.bind (Json.member "d" obj) Json.int_list);
  Alcotest.(check (option (list int))) "missing member" None
    (Option.bind (Json.member "zz" obj) Json.int_list);
  Alcotest.(check (option (list (float 0.)))) "float list of ints" (Some [ 1.; 2. ])
    (Option.bind (Json.member "d" obj) Json.float_list)

(* print-then-parse is the identity on generated trees *)
let gen_json =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) small_signed_int;
              map (fun f -> Json.Float f) (float_bound_inclusive 1000.);
              map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 8));
            ]
        in
        if n <= 0 then scalar
        else
          frequency
            [
              (2, scalar);
              (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
              ( 1,
                map
                  (fun ps -> Json.Obj ps)
                  (list_size (int_bound 4)
                     (pair (string_size ~gen:printable (int_bound 6)) (self (n / 2))))
              );
            ]))

let prop_print_parse_identity =
  QCheck.Test.make ~count:200 ~name:"json: parse (to_string j) = j"
    (QCheck.make gen_json ~print:(fun j -> Json.to_string j))
    (fun j -> Json.parse (Json.to_string j) = j)

let suite =
  [
    ( "util/json",
      [
        Alcotest.test_case "scalars" `Quick test_scalars;
        Alcotest.test_case "containers" `Quick test_containers;
        Alcotest.test_case "escapes" `Quick test_escapes;
        Alcotest.test_case "adversarial inputs" `Quick test_adversarial;
        Alcotest.test_case "deterministic compact print" `Quick
          test_print_compact_deterministic;
        Alcotest.test_case "float representation" `Quick test_float_repr;
        Alcotest.test_case "accessors" `Quick test_accessors;
        QCheck_alcotest.to_alcotest prop_print_parse_identity;
      ] );
  ]
