(* A further round of edge cases across the stack: structures at their
   size limits, parameter extremes, and cross-module consistency checks
   not covered by the per-module suites. *)

module Topology = Etx_graph.Topology
module Digraph = Etx_graph.Digraph
module Dijkstra = Etx_graph.Dijkstra
module Fw = Etx_graph.Floyd_warshall
module Battery = Etx_battery.Battery
module Profile = Etx_battery.Profile
module Weight = Etx_routing.Weight
module Router = Etx_routing.Router
module Mapping = Etx_routing.Mapping
module Analysis = Etx_routing.Analysis
module Maximin = Etx_routing.Maximin
module Config = Etx_etsim.Config
module Engine = Etx_etsim.Engine
module Metrics = Etx_etsim.Metrics
module Workload = Etx_etsim.Workload

let check_float = Alcotest.(check (float 1e-9))

(* - graph structures at their limits - *)

let test_dijkstra_heap_growth () =
  (* a dense graph forces the internal heap past its initial capacity *)
  let n = 40 in
  let g = Digraph.create ~node_count:n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then Digraph.add_edge g ~src:i ~dst:j ~length:(float_of_int ((i + j) mod 7) +. 1.)
    done
  done;
  let result = Dijkstra.run (Digraph.adjacency_matrix g) ~src:0 in
  for j = 1 to n - 1 do
    Alcotest.(check bool) "all reachable" true (result.Dijkstra.distances.(j) < infinity)
  done

let test_fw_asymmetric_graph () =
  (* directions can have different distances *)
  let g = Digraph.create ~node_count:3 in
  Digraph.add_edge g ~src:0 ~dst:1 ~length:1.;
  Digraph.add_edge g ~src:1 ~dst:2 ~length:1.;
  Digraph.add_edge g ~src:2 ~dst:0 ~length:10.;
  let r = Fw.run (Digraph.adjacency_matrix g) in
  check_float "forward" 2. (Fw.distance r ~src:0 ~dst:2);
  check_float "backward" 10. (Fw.distance r ~src:2 ~dst:0)

let test_torus_shortens_hop_counts () =
  (* wrap links span the fabric so the physical distance is unchanged,
     but corner-to-corner needs far fewer hops *)
  let hops topology =
    let n = Etx_graph.Topology.node_count topology in
    let w =
      Etx_util.Matrix.init ~dim:n ~f:(fun i j -> if i = j then 0. else infinity)
    in
    Digraph.iter_edges topology.Topology.graph ~f:(fun ~src ~dst ~length:_ ->
        Etx_util.Matrix.set w src dst 1.);
    Fw.distance (Fw.run w) ~src:0 ~dst:(n - 1)
  in
  let mesh_hops = hops (Topology.square_mesh ~size:6 ()) in
  let torus_hops = hops (Topology.torus ~rows:6 ~cols:6 ()) in
  Alcotest.(check (float 1e-9)) "mesh corner distance" 10. mesh_hops;
  Alcotest.(check (float 1e-9)) "torus corner distance" 2. torus_hops

let test_torus_small_has_no_wrap () =
  (* a 2-wide torus would duplicate existing links; the generator skips
     the wrap in that dimension *)
  let t = Topology.torus ~rows:2 ~cols:2 () in
  Alcotest.(check int) "same as the mesh" (Digraph.edge_count (Topology.mesh ~rows:2 ~cols:2 ()).Topology.graph)
    (Digraph.edge_count t.Topology.graph)

(* - battery and profile extremes - *)

let test_profile_constant_soc_at_voltage () =
  let p = Profile.constant ~volts:3.5 in
  check_float "never drops below smaller" 0. (Profile.soc_at_voltage p ~volts:3.0);
  check_float "always below bigger" 1. (Profile.soc_at_voltage p ~volts:4.0)

let test_battery_thin_film_level_tracks_total_charge () =
  let b =
    Battery.create ~kind:(Battery.Thin_film Battery.default_thin_film) ~capacity_pj:8000.
  in
  Alcotest.(check int) "full" 7 (Battery.level b ~levels:8);
  (* two 2000 pJ draws with rests: draining the whole available well at
     once would collapse the cell (tested elsewhere) *)
  ignore (Battery.draw b ~energy_pj:2000.);
  Battery.tick b ~cycles:100_000;
  ignore (Battery.draw b ~energy_pj:2000.);
  Battery.tick b ~cycles:100_000 (* let wells equalize *);
  Alcotest.(check bool) "alive at half charge" true (not (Battery.is_dead b));
  Alcotest.(check bool) "half-ish" true
    (let l = Battery.level b ~levels:8 in
     l >= 3 && l <= 4)

let test_battery_zero_energy_draw () =
  let b = Battery.create ~kind:Battery.Ideal ~capacity_pj:10. in
  Alcotest.(check bool) "free draw ok" true (Battery.draw b ~energy_pj:0.);
  check_float "nothing taken" 10. (Battery.remaining_pj b)

let test_battery_tick_validation () =
  let b = Battery.create ~kind:Battery.Ideal ~capacity_pj:10. in
  Alcotest.check_raises "negative" (Invalid_argument "Battery.tick: negative cycles")
    (fun () -> Battery.tick b ~cycles:(-1))

(* - routing-layer extremes - *)

let test_weight_two_levels () =
  (* the coarsest quantization the policy layer allows *)
  let w = Weight.Exponential { q = 2. } in
  check_float "full" 1. (Weight.battery_factor w ~level:1 ~levels:2);
  check_float "drained" 2. (Weight.battery_factor w ~level:0 ~levels:2)

let test_weight_q_below_one_inverts () =
  (* q < 1 would PREFER drained nodes; the policy constructor allows any
     positive q, and the weight algebra stays consistent *)
  let w = Weight.Exponential { q = 0.5 } in
  Alcotest.(check bool) "factor below one" true
    (Weight.battery_factor w ~level:0 ~levels:8 < 1.)

let test_router_on_line_topology () =
  let line = Topology.line ~length:6 () in
  let assignment = [| 0; 2; 1; 2; 0; 2 |] in
  let mapping = Mapping.custom ~assignment ~module_count:3 in
  let snapshot = Router.full_snapshot ~node_count:6 ~levels:8 in
  let table =
    Router.compute ~graph:line.Topology.graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  (* from the left end, module 2 (index 1) sits at node 2 *)
  Alcotest.(check (option int)) "next hop" (Some 1)
    (Etx_routing.Routing_table.next_hop table ~node:0 ~module_index:1);
  Alcotest.(check (option int)) "destination" (Some 2)
    (Etx_routing.Routing_table.destination table ~node:0 ~module_index:1)

let test_maximin_failed_links_respected () =
  let line = Topology.line ~length:3 () in
  let snapshot =
    { (Router.full_snapshot ~node_count:3 ~levels:8) with
      Router.failed_links = [ (0, 1); (1, 0) ] }
  in
  let paths = Maximin.widest_paths ~graph:line.Topology.graph ~snapshot () in
  Alcotest.(check int) "cut" (-1) (Maximin.path_width paths ~src:0 ~dst:2)

let test_analysis_reception_parameter_matters () =
  let problem = Etextile.Calibration.problem ~mesh_size:4 in
  let topology = Topology.square_mesh ~size:4 () in
  let mapping = Mapping.checkerboard topology in
  let jobs fraction =
    (Analysis.predict ~problem ~topology ~mapping
       ~module_sequence:Etextile.Experiments.aes_module_sequence
       ~reception_fraction:fraction ())
      .Analysis.predicted_jobs
  in
  Alcotest.(check bool) "free reception predicts more" true (jobs 0. > jobs 1.)

let test_analysis_usable_fraction_scales () =
  let problem = Etextile.Calibration.problem ~mesh_size:4 in
  let topology = Topology.square_mesh ~size:4 () in
  let mapping = Mapping.checkerboard topology in
  let jobs fraction =
    (Analysis.predict ~problem ~topology ~mapping
       ~module_sequence:Etextile.Experiments.aes_module_sequence
       ~usable_fraction:fraction ())
      .Analysis.predicted_jobs
  in
  Alcotest.(check (float 1e-6)) "linear in usable charge" (2. *. jobs 0.4) (jobs 0.8)

(* - engine parameter extremes - *)

let quick_config ?(size = 4) changes =
  changes (Etextile.Calibration.config ~mesh_size:size ~seed:1 ())

let test_engine_one_bit_link () =
  let config = quick_config (fun c -> { c with Config.link_width_bits = 1 }) in
  let m = Engine.simulate config in
  (* 261 cycles per hop: still completes, just slower *)
  Alcotest.(check bool) "works" true (m.Metrics.jobs_completed > 10);
  Alcotest.(check bool) "serialization dominates" true
    (m.Metrics.job_latency_mean_cycles > 500.)

let test_engine_zero_reception () =
  let config = quick_config (fun c -> { c with Config.reception_energy_fraction = 0. }) in
  let m = Engine.simulate config in
  Alcotest.(check bool) "more jobs with free reception" true (m.Metrics.jobs_completed > 61)

let test_engine_tiny_battery_dies_fast () =
  let config = quick_config (fun c -> { c with Config.battery_capacity_pj = 5000. }) in
  let m = Engine.simulate config in
  Alcotest.(check bool) "very short life" true (m.Metrics.jobs_completed < 10)

let test_engine_huge_frame_period_starves_routing () =
  (* with one frame per 40k cycles, tables go stale and throughput
     suffers relative to the calibrated 800 *)
  let slow = quick_config (fun c -> { c with Config.frame_period_cycles = 40_000 }) in
  let fast = quick_config Fun.id in
  let jobs c = (Engine.simulate c).Metrics.jobs_completed in
  Alcotest.(check bool) "stale tables cost jobs" true (jobs slow <= jobs fast)

let test_engine_all_links_failed_dies_structurally () =
  let topology = Topology.square_mesh ~size:3 () in
  let all_links =
    Digraph.fold_edges topology.Topology.graph ~init:[] ~f:(fun acc ~src ~dst ~length:_ ->
        if src < dst then (0, src, dst) :: acc else acc)
  in
  let config =
    Etx_etsim.Config.make ~topology ~link_failure_schedule:all_links
      ~frame_period_cycles:800 ~job_source:Config.Round_robin_entry ~seed:1 ()
  in
  let m = Engine.simulate config in
  Alcotest.(check int) "no job can even start" 0 m.Metrics.jobs_completed;
  match m.death_reason with
  | Metrics.Module_unreachable _ -> ()
  | other -> Alcotest.failf "expected unreachable, got %s" (Metrics.death_reason_string other)

let test_engine_single_controller_equivalence () =
  (* a huge controller battery behaves like the infinite controller *)
  let finite =
    quick_config (fun c ->
        {
          c with
          Config.controllers = Config.Battery_controllers { count = 1 };
          controller_battery_capacity_pj = 1e12;
          controller_battery_kind = Etx_battery.Battery.Ideal;
        })
  in
  let infinite = quick_config Fun.id in
  Alcotest.(check int) "same jobs"
    (Engine.simulate infinite).Metrics.jobs_completed
    (Engine.simulate finite).Metrics.jobs_completed

let test_workload_single_module_plan () =
  let w = Workload.synthetic ~acts_per_job:[| 4 |] () in
  Alcotest.(check int) "four acts" 4 (Workload.plan_length w);
  (* only one module: repeats are unavoidable and allowed *)
  Array.iter
    (fun act -> Alcotest.(check int) "module 0" 0 act.Workload.module_index)
    (Workload.plan w)

let test_engine_single_module_workload () =
  (* a one-module application: every act is Deliver_here after the first
     routing step; the platform still works *)
  let topology = Topology.square_mesh ~size:3 () in
  let workload = Workload.synthetic ~acts_per_job:[| 12 |] () in
  let config =
    Etx_etsim.Config.make ~topology
      ~computation:(Etx_energy.Computation.custom ~energies_pj:[| 120. |])
      ~computation_cycles:[| 2 |]
      ~mapping:(Mapping.custom ~assignment:(Array.make 9 0) ~module_count:1)
      ~workloads:[ workload ] ~frame_period_cycles:800
      ~job_source:Config.Round_robin_entry ~seed:1 ()
  in
  let m = Engine.simulate config in
  Alcotest.(check bool) "completes" true (m.Metrics.jobs_completed > 20);
  Alcotest.(check int) "verified" m.jobs_completed m.jobs_verified

let suite =
  [
    ( "edge/graph",
      [
        Alcotest.test_case "dijkstra heap growth" `Quick test_dijkstra_heap_growth;
        Alcotest.test_case "asymmetric distances" `Quick test_fw_asymmetric_graph;
        Alcotest.test_case "torus shortens hop counts" `Quick test_torus_shortens_hop_counts;
        Alcotest.test_case "tiny torus has no wrap" `Quick test_torus_small_has_no_wrap;
      ] );
    ( "edge/battery",
      [
        Alcotest.test_case "constant profile inverse" `Quick test_profile_constant_soc_at_voltage;
        Alcotest.test_case "thin-film level tracking" `Quick
          test_battery_thin_film_level_tracks_total_charge;
        Alcotest.test_case "zero-energy draw" `Quick test_battery_zero_energy_draw;
        Alcotest.test_case "tick validation" `Quick test_battery_tick_validation;
      ] );
    ( "edge/routing",
      [
        Alcotest.test_case "two-level weights" `Quick test_weight_two_levels;
        Alcotest.test_case "q below one" `Quick test_weight_q_below_one_inverts;
        Alcotest.test_case "router on a line" `Quick test_router_on_line_topology;
        Alcotest.test_case "maximin failed links" `Quick test_maximin_failed_links_respected;
        Alcotest.test_case "analysis reception knob" `Quick
          test_analysis_reception_parameter_matters;
        Alcotest.test_case "analysis usable fraction" `Quick test_analysis_usable_fraction_scales;
      ] );
    ( "edge/engine",
      [
        Alcotest.test_case "1-bit link" `Quick test_engine_one_bit_link;
        Alcotest.test_case "zero reception" `Quick test_engine_zero_reception;
        Alcotest.test_case "tiny battery" `Quick test_engine_tiny_battery_dies_fast;
        Alcotest.test_case "huge frame period" `Quick
          test_engine_huge_frame_period_starves_routing;
        Alcotest.test_case "all links failed" `Quick
          test_engine_all_links_failed_dies_structurally;
        Alcotest.test_case "big finite controller = infinite" `Quick
          test_engine_single_controller_equivalence;
        Alcotest.test_case "one-module workload plan" `Quick test_workload_single_module_plan;
        Alcotest.test_case "one-module platform" `Quick test_engine_single_module_workload;
      ] );
  ]
