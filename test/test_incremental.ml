(* The bit-identical fast paths: delta-driven routing repair
   (Router.Delta / compute_incremental) and the event-driven frame
   engine (Event_wheel / quiet-frame fast-forward).  Everything here
   guards one contract: with the flags on, the results are the same
   bits - same routing tables, same metrics, same checkpoints. *)

module Router = Etx_routing.Router
module Maximin = Etx_routing.Maximin
module Mapping = Etx_routing.Mapping
module Routing_table = Etx_routing.Routing_table
module Weight = Etx_routing.Weight
module Policy = Etx_routing.Policy
module Topology = Etx_graph.Topology
module Battery = Etx_battery.Battery
module Engine = Etx_etsim.Engine
module Config = Etx_etsim.Config
module Metrics = Etx_etsim.Metrics
module Event_wheel = Etx_etsim.Event_wheel
module Calibration = Etextile.Calibration
module Prng = Etx_util.Prng

let copy_snapshot (s : Router.snapshot) =
  {
    Router.alive = Array.copy s.Router.alive;
    battery_level = Array.copy s.Router.battery_level;
    levels = s.Router.levels;
    locked_ports = s.Router.locked_ports;
    failed_links = s.Router.failed_links;
  }

(* - Delta.diff: the controller's exported change-set - *)

let test_delta_empty () =
  let previous = Router.full_snapshot ~node_count:9 ~levels:8 in
  let current = copy_snapshot previous in
  let d = Router.Delta.diff ~previous current in
  Alcotest.(check bool) "is_empty" true (Router.Delta.is_empty d);
  Alcotest.(check bool) "not full" false d.Router.Delta.full;
  Alcotest.(check (list int)) "no dirty levels" [] d.Router.Delta.dirty_levels;
  (* steady state allocates nothing: the preallocated constant comes back *)
  Alcotest.(check bool) "preallocated constant" true (d == Router.Delta.empty)

let test_delta_levels () =
  (* the change-set is exactly the moved nodes, in ascending id order *)
  let previous = Router.full_snapshot ~node_count:9 ~levels:8 in
  let current = copy_snapshot previous in
  current.Router.battery_level.(5) <- 3;
  current.Router.battery_level.(2) <- 6;
  current.Router.battery_level.(8) <- 0;
  let d = Router.Delta.diff ~previous current in
  Alcotest.(check (list int)) "dirty ids ascending" [ 2; 5; 8 ]
    d.Router.Delta.dirty_levels;
  Alcotest.(check bool) "levels only" false
    (d.Router.Delta.full || d.Router.Delta.alive_changed || d.Router.Delta.locks_changed
   || d.Router.Delta.links_changed);
  Alcotest.(check bool) "not empty" false (Router.Delta.is_empty d)

let test_delta_structural_flags () =
  let previous = Router.full_snapshot ~node_count:9 ~levels:8 in
  let killed = copy_snapshot previous in
  killed.Router.alive.(4) <- false;
  let d = Router.Delta.diff ~previous killed in
  Alcotest.(check bool) "alive_changed" true d.Router.Delta.alive_changed;
  Alcotest.(check (list int)) "no dirty levels" [] d.Router.Delta.dirty_levels;
  let locked = copy_snapshot previous in
  locked.Router.locked_ports <- [ (0, 1) ];
  Alcotest.(check bool) "locks_changed" true
    (Router.Delta.diff ~previous locked).Router.Delta.locks_changed;
  let cut = copy_snapshot previous in
  cut.Router.failed_links <- [ (1, 2) ];
  Alcotest.(check bool) "links_changed" true
    (Router.Delta.diff ~previous cut).Router.Delta.links_changed

let test_delta_full_on_shape_change () =
  (* arity or quantization changes leave nothing reusable *)
  let previous = Router.full_snapshot ~node_count:9 ~levels:8 in
  let grown = Router.full_snapshot ~node_count:16 ~levels:8 in
  Alcotest.(check bool) "node count" true
    (Router.Delta.diff ~previous grown).Router.Delta.full;
  let requantized = Router.full_snapshot ~node_count:9 ~levels:4 in
  Alcotest.(check bool) "levels" true
    (Router.Delta.diff ~previous requantized).Router.Delta.full

let test_delta_identity_short_circuit () =
  (* sharing the same list frame to frame (what the engine does) must
     read as unchanged without a structural walk *)
  let previous = Router.full_snapshot ~node_count:9 ~levels:8 in
  previous.Router.locked_ports <- [ (0, 1); (3, 4) ];
  previous.Router.failed_links <- [ (5, 8) ];
  let current = copy_snapshot previous in
  let d = Router.Delta.diff ~previous current in
  Alcotest.(check bool) "shared lists are unchanged" true (Router.Delta.is_empty d)

(* - repair classes: each one equals the full recompute - *)

let mesh_parts size =
  let t = Topology.square_mesh ~size () in
  (t.Topology.graph, Mapping.checkerboard t)

let test_repair_classes_ear () =
  let graph, mapping = mesh_parts 4 in
  let weight = Weight.Exponential { q = 2. } in
  let workspace = Router.create_workspace () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  ignore
    (Router.compute ~workspace ~graph ~mapping ~module_count:3 ~weight snapshot);
  let previous = ref (copy_snapshot snapshot) in
  let step name mutate =
    mutate snapshot;
    let delta = Router.Delta.diff ~previous:!previous snapshot in
    let got =
      Router.compute_incremental ~workspace ~graph ~mapping ~module_count:3 ~weight
        ~delta snapshot
    in
    previous := copy_snapshot snapshot;
    Alcotest.(check bool) name true
      (Routing_table.equal got
         (Router.compute ~graph ~mapping ~module_count:3 ~weight snapshot))
  in
  step "empty delta" (fun _ -> ());
  step "lock-only" (fun s -> s.Router.locked_ports <- [ (0, 1) ]);
  step "lock released" (fun s -> s.Router.locked_ports <- []);
  step "level-only, under threshold" (fun s -> s.Router.battery_level.(6) <- 2);
  step "level-only, past threshold" (fun s ->
      for i = 0 to 15 do
        s.Router.battery_level.(i) <- (i * 5) mod 8
      done);
  step "death" (fun s -> s.Router.alive.(9) <- false);
  step "link failure" (fun s -> s.Router.failed_links <- [ (0, 4) ])

let test_repair_classes_maximin () =
  let graph, mapping = mesh_parts 4 in
  let workspace = Maximin.create_workspace () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  ignore (Maximin.compute ~workspace ~graph ~mapping ~module_count:3 snapshot);
  let previous = ref (copy_snapshot snapshot) in
  let step name mutate =
    mutate snapshot;
    let delta = Router.Delta.diff ~previous:!previous snapshot in
    let got =
      Maximin.compute_incremental ~workspace ~graph ~mapping ~module_count:3 ~delta
        snapshot
    in
    previous := copy_snapshot snapshot;
    Alcotest.(check bool) name true
      (Routing_table.equal got (Maximin.compute ~graph ~mapping ~module_count:3 snapshot))
  in
  step "empty delta" (fun _ -> ());
  step "lock-only" (fun s -> s.Router.locked_ports <- [ (5, 6) ]);
  step "level change falls back" (fun s -> s.Router.battery_level.(3) <- 1);
  step "death falls back" (fun s -> s.Router.alive.(10) <- false)

let test_sdr_level_only_returns_cached_table () =
  (* a battery-blind weight never reads levels: the cached table must
     come back as the same object, not a recomputed copy *)
  let graph, mapping = mesh_parts 4 in
  let workspace = Router.create_workspace () in
  let snapshot = Router.full_snapshot ~node_count:16 ~levels:8 in
  let cached =
    Router.compute ~workspace ~graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance snapshot
  in
  let previous = copy_snapshot snapshot in
  snapshot.Router.battery_level.(7) <- 1;
  let got =
    Router.compute_incremental ~workspace ~graph ~mapping ~module_count:3
      ~weight:Weight.Shortest_distance
      ~delta:(Router.Delta.diff ~previous snapshot)
      snapshot
  in
  Alcotest.(check bool) "same object" true (got == cached)

(* - QCheck: incremental == full over random meshes and random
   controller-style mutation sequences.  The scenario record is fully
   deterministic in its fields, so a failure printout is a replay
   recipe. - *)

type repair_scenario = { size : int; seed : int; steps : int; policy_ix : int }

let repair_scenario_gen =
  QCheck.Gen.(
    map
      (fun (size, seed, steps, policy_ix) -> { size; seed; steps; policy_ix })
      (tup4 (int_range 3 6) (int_range 0 100_000) (int_range 1 12) (int_range 0 2)))

let repair_scenario_print s =
  Printf.sprintf
    "{size=%d seed=%d steps=%d policy=%s} (the seed fully determines the mutation \
     sequence: replay with these exact fields)"
    s.size s.seed s.steps
    (match s.policy_ix with 0 -> "ear" | 1 -> "sdr" | _ -> "maximin")

let repair_scenario_arbitrary =
  QCheck.make ~print:repair_scenario_print repair_scenario_gen

let run_repair_scenario s =
  let t = Topology.square_mesh ~size:s.size () in
  let graph = t.Topology.graph in
  let mapping = Mapping.checkerboard t in
  let n = s.size * s.size in
  let prng = Prng.create ~seed:s.seed in
  let edges = ref [] in
  Etx_graph.Digraph.iter_edges graph ~f:(fun ~src ~dst ~length:_ ->
      edges := (src, dst) :: !edges);
  let edges = Array.of_list (List.rev !edges) in
  let snapshot = Router.full_snapshot ~node_count:n ~levels:8 in
  for i = 0 to n - 1 do
    snapshot.Router.battery_level.(i) <- Prng.int prng ~bound:8
  done;
  let weight, use_maximin =
    match s.policy_ix with
    | 0 -> (Weight.Exponential { q = 2. }, false)
    | 1 -> (Weight.Shortest_distance, false)
    | _ -> (Weight.Shortest_distance, true)
  in
  let router_ws = Router.create_workspace () in
  let maximin_ws = Maximin.create_workspace () in
  let incremental delta =
    if use_maximin then
      Maximin.compute_incremental ~workspace:maximin_ws ~graph ~mapping ~module_count:3
        ~delta snapshot
    else
      Router.compute_incremental ~workspace:router_ws ~graph ~mapping ~module_count:3
        ~weight ~delta snapshot
  in
  let full () =
    if use_maximin then Maximin.compute ~graph ~mapping ~module_count:3 snapshot
    else Router.compute ~graph ~mapping ~module_count:3 ~weight snapshot
  in
  (* frame 0: nothing cached yet, the full delta primes the workspace *)
  let ok = ref (Routing_table.equal (incremental Router.Delta.full) (full ())) in
  let previous = ref (copy_snapshot snapshot) in
  for _ = 1 to s.steps do
    (* controller-style drift: mostly battery levels, sometimes deaths,
       lock flips, wear-outs, sometimes a perfectly quiet frame *)
    (match Prng.int prng ~bound:8 with
    | 0 -> ()
    | 1 -> snapshot.Router.alive.(Prng.int prng ~bound:n) <- false
    | 2 ->
      let e = edges.(Prng.int prng ~bound:(Array.length edges)) in
      snapshot.Router.locked_ports <-
        (if List.mem e snapshot.Router.locked_ports then
           List.filter (fun x -> x <> e) snapshot.Router.locked_ports
         else e :: snapshot.Router.locked_ports)
    | 3 ->
      let e = edges.(Prng.int prng ~bound:(Array.length edges)) in
      if not (List.mem e snapshot.Router.failed_links) then
        snapshot.Router.failed_links <- e :: snapshot.Router.failed_links
    | _ ->
      (* 1..n/2 dirty nodes: straddles the 15% damage threshold, so both
         the column-patch and the refill fallback get exercised *)
      let touched = 1 + Prng.int prng ~bound:(max 1 (n / 2)) in
      for _ = 1 to touched do
        snapshot.Router.battery_level.(Prng.int prng ~bound:n) <- Prng.int prng ~bound:8
      done);
    let delta = Router.Delta.diff ~previous:!previous snapshot in
    ok := !ok && Routing_table.equal (incremental delta) (full ());
    previous := copy_snapshot snapshot
  done;
  !ok

let prop_incremental_equals_full =
  QCheck.Test.make ~name:"incremental: delta repair equals full recompute" ~count:200
    repair_scenario_arbitrary run_repair_scenario

(* - the event wheel - *)

let test_wheel_orders_and_pops () =
  let w = Event_wheel.create () in
  Alcotest.(check (option int)) "empty" None (Event_wheel.next_due w);
  Alcotest.(check int) "length 0" 0 (Event_wheel.length w);
  Event_wheel.schedule w ~cycle:500 ~tag:1;
  Event_wheel.schedule w ~cycle:100 ~tag:2;
  Event_wheel.schedule w ~cycle:500 ~tag:3;
  Alcotest.(check (option int)) "earliest" (Some 100) (Event_wheel.next_due w);
  Alcotest.(check int) "length 3" 3 (Event_wheel.length w);
  let pop () = Event_wheel.pop w in
  Alcotest.(check (option (pair int int))) "min first" (Some (100, 2)) (pop ());
  (* same cycle: FIFO by insertion order *)
  Alcotest.(check (option (pair int int))) "tie FIFO 1" (Some (500, 1)) (pop ());
  Alcotest.(check (option (pair int int))) "tie FIFO 2" (Some (500, 3)) (pop ());
  Alcotest.(check (option (pair int int))) "drained" None (pop ())

let test_wheel_drop_until_and_clear () =
  let w = Event_wheel.create () in
  List.iter (fun c -> Event_wheel.schedule w ~cycle:c ~tag:c) [ 300; 100; 400; 200; 500 ];
  Event_wheel.drop_until w ~cycle:300;
  Alcotest.(check (option int)) "300 and earlier gone" (Some 400) (Event_wheel.next_due w);
  Alcotest.(check int) "two left" 2 (Event_wheel.length w);
  Event_wheel.clear w;
  Alcotest.(check (option int)) "cleared" None (Event_wheel.next_due w);
  Alcotest.(check int) "empty again" 0 (Event_wheel.length w)

let prop_wheel_drains_sorted_stable =
  QCheck.Test.make ~name:"event wheel: drains sorted, FIFO within a cycle" ~count:200
    QCheck.(small_list (int_range 0 50))
    (fun cycles ->
      let w = Event_wheel.create () in
      List.iteri (fun i c -> Event_wheel.schedule w ~cycle:c ~tag:i) cycles;
      let rec drain acc =
        match Event_wheel.pop w with
        | None -> List.rev acc
        | Some e -> drain (e :: acc)
      in
      drain []
      = List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i c -> (c, i)) cycles))

(* - engine equivalence: all four flag combinations produce the same
   metrics - *)

let check_modes ~name mk =
  let base = Engine.simulate (mk ~incremental_routing:false ~event_driven:false) in
  List.iter
    (fun (ir, ed) ->
      let m = Engine.simulate (mk ~incremental_routing:ir ~event_driven:ed) in
      Alcotest.(check bool) (Printf.sprintf "%s ir=%b ed=%b" name ir ed) true (m = base))
    [ (true, false); (false, true); (true, true) ]

let thin_film = Battery.Thin_film Battery.default_thin_film

let test_modes_policies () =
  List.iter
    (fun (name, policy) ->
      check_modes ~name (fun ~incremental_routing ~event_driven ->
          Calibration.config ~policy ~battery_kind:thin_film ~seed:3 ~incremental_routing
            ~event_driven ~mesh_size:4 ()))
    [
      ("ear-4-thin", Calibration.ear ());
      ("sdr-4-thin", Calibration.sdr ());
      ("maximin-4-thin", Policy.maximin ());
      ("ear2-4-thin", Policy.ear_squared ());
    ]

let test_modes_ideal () =
  check_modes ~name:"ear-4-ideal" (fun ~incremental_routing ~event_driven ->
      Calibration.config ~battery_kind:Battery.Ideal ~seed:7 ~incremental_routing
        ~event_driven ~mesh_size:4 ())

let test_modes_ideal_boundary () =
  (* near-infinite idle stretches with levels crossed mid-stretch: the
     closed-form quiet-prefix must stop at exactly the right frame *)
  check_modes ~name:"ideal-idle-boundary" (fun ~incremental_routing ~event_driven ->
      let config =
        Calibration.config ~battery_kind:Battery.Ideal ~seed:5 ~incremental_routing
          ~event_driven ~mesh_size:4 ()
      in
      {
        config with
        Config.battery_capacity_pj = 300_000.;
        computation_cycles = [| 400_000; 400_000; 400_000 |];
      })

let test_modes_link_failures () =
  (* scheduled wear-outs ride the event wheel: the fast-forward horizon
     must stop short of every failure cycle *)
  let topology = Topology.square_mesh ~size:5 () in
  let schedule =
    Etextile.Experiments.random_failure_schedule ~topology ~count:4 ~before_cycle:40_000
      ~seed:93
  in
  check_modes ~name:"ear-5-failures" (fun ~incremental_routing ~event_driven ->
      Calibration.config ~seed:2 ~link_failure_schedule:schedule ~incremental_routing
        ~event_driven ~mesh_size:5 ())

(* - checkpoint compatibility in event-driven mode - *)

let finish engine =
  match Engine.run_until engine ~cycle:max_int with
  | Engine.Finished metrics -> metrics
  | Engine.Paused -> Alcotest.fail "run_until max_int paused"

let check_event_driven_checkpoints ~name mk =
  let config ~event_driven = mk ~incremental_routing:true ~event_driven in
  let reference = Engine.simulate (config ~event_driven:true) in
  let lifetime = reference.Metrics.lifetime_cycles in
  List.iter
    (fun stop ->
      let engine = Engine.create (config ~event_driven:true) in
      match Engine.run_until engine ~cycle:stop with
      | Engine.Finished _ -> Alcotest.fail (name ^ ": died before the pause")
      | Engine.Paused ->
        let payload = Engine.checkpoint engine in
        (* stop/resume in event-driven mode is bit-identical... *)
        Alcotest.(check bool)
          (Printf.sprintf "%s: resume event-driven @%d" name stop)
          true
          (finish (Engine.restore (config ~event_driven:true) payload) = reference);
        (* ...and the same bytes restore under the stepped config: the
           wheel is derived state, outside the fingerprint *)
        Alcotest.(check bool)
          (Printf.sprintf "%s: resume stepped @%d" name stop)
          true
          (finish (Engine.restore (config ~event_driven:false) payload) = reference))
    [ lifetime / 5; lifetime / 2 ];
  (* a stepped checkpoint resumes event-driven, too *)
  let engine = Engine.create (config ~event_driven:false) in
  match Engine.run_until engine ~cycle:(lifetime / 3) with
  | Engine.Finished _ -> Alcotest.fail (name ^ ": died before the pause")
  | Engine.Paused ->
    Alcotest.(check bool)
      (name ^ ": stepped checkpoint resumes event-driven")
      true
      (finish (Engine.restore (config ~event_driven:true) (Engine.checkpoint engine))
      = reference)

let test_checkpoint_event_driven_thin_film () =
  check_event_driven_checkpoints ~name:"thin-4"
    (fun ~incremental_routing ~event_driven ->
      Calibration.config ~seed:1 ~incremental_routing ~event_driven ~mesh_size:4 ())

let test_checkpoint_event_driven_ideal () =
  check_event_driven_checkpoints ~name:"ideal-4"
    (fun ~incremental_routing ~event_driven ->
      Calibration.config ~battery_kind:Battery.Ideal ~seed:1 ~incremental_routing
        ~event_driven ~mesh_size:4 ())

let test_checkpoint_event_driven_pending_failures () =
  (* restore must reschedule the not-yet-fired failures into the rebuilt
     wheel, or the fast path would skip over them *)
  let topology = Topology.square_mesh ~size:5 () in
  let schedule =
    Etextile.Experiments.random_failure_schedule ~topology ~count:4 ~before_cycle:40_000
      ~seed:93
  in
  let config ~event_driven =
    Calibration.config ~seed:2 ~link_failure_schedule:schedule ~incremental_routing:true
      ~event_driven ~mesh_size:5 ()
  in
  let reference = Engine.simulate (config ~event_driven:true) in
  let engine = Engine.create (config ~event_driven:true) in
  match Engine.run_until engine ~cycle:20_000 with
  | Engine.Finished _ -> Alcotest.fail "died before the pause"
  | Engine.Paused ->
    Alcotest.(check bool) "resume with pending failures" true
      (finish (Engine.restore (config ~event_driven:true) (Engine.checkpoint engine))
      = reference)

let suite =
  [
    ( "incremental/delta",
      [
        ("empty diff", `Quick, test_delta_empty);
        ("dirty levels pinned", `Quick, test_delta_levels);
        ("structural flags", `Quick, test_delta_structural_flags);
        ("shape change is full", `Quick, test_delta_full_on_shape_change);
        ("identity short-circuit", `Quick, test_delta_identity_short_circuit);
      ] );
    ( "incremental/repair",
      [
        ("EAR repair classes", `Quick, test_repair_classes_ear);
        ("maximin repair classes", `Quick, test_repair_classes_maximin);
        ("SDR level-only cache", `Quick, test_sdr_level_only_returns_cached_table);
        QCheck_alcotest.to_alcotest prop_incremental_equals_full;
      ] );
    ( "event-driven/wheel",
      [
        ("order and FIFO ties", `Quick, test_wheel_orders_and_pops);
        ("drop_until and clear", `Quick, test_wheel_drop_until_and_clear);
        QCheck_alcotest.to_alcotest prop_wheel_drains_sorted_stable;
      ] );
    ( "event-driven/engine",
      [
        ("policies x modes", `Quick, test_modes_policies);
        ("ideal batteries", `Quick, test_modes_ideal);
        ("ideal level boundary", `Quick, test_modes_ideal_boundary);
        ("scheduled link failures", `Quick, test_modes_link_failures);
      ] );
    ( "event-driven/checkpoint",
      [
        ("thin-film stop/resume + cross-mode", `Quick, test_checkpoint_event_driven_thin_film);
        ("ideal stop/resume + cross-mode", `Quick, test_checkpoint_event_driven_ideal);
        ("pending failures reschedule", `Quick, test_checkpoint_event_driven_pending_failures);
      ] );
  ]
