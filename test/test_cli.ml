(* End-to-end tests of the etx binary: the resilience subcommand, the
   PR 3 fault flags on simulate, checkpoint/resume/audit, and non-zero
   exit codes on invalid values.  Driven through the shell so the whole
   cmdliner wiring (parsing, validation, exit codes) is under test. *)

let exe = "../bin/etx_main.exe"

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* run [exe args], capturing interleaved stdout+stderr and the exit code *)
let run_command args =
  let out = Filename.temp_file "etx_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let code = Sys.command (Printf.sprintf "%s %s > %s 2>&1" exe args (Filename.quote out)) in
      let ic = open_in_bin out in
      let output = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (code, output))

let check_ok name args =
  let code, output = run_command args in
  if code <> 0 then Alcotest.failf "%s: exit %d\n%s" name code output;
  output

let check_fails name args =
  let code, output = run_command args in
  if code = 0 then Alcotest.failf "%s: expected non-zero exit\n%s" name output;
  output

let test_simulate_baseline () =
  let output = check_ok "simulate" "simulate --size 4 --seed 1" in
  Alcotest.(check bool) "prints metrics" true (contains output "jobs completed:")

let test_simulate_fault_flags () =
  let args = "simulate --size 4 --seed 1 --ber 2e-4 --fault-seed 7 --retries 5" in
  let first = check_ok "faulty simulate" args in
  Alcotest.(check bool) "reports corruption counters" true (contains first "faults:");
  (* the fault stream is seeded: the same flags replay the same run *)
  let second = check_ok "faulty simulate (again)" args in
  Alcotest.(check string) "deterministic replay" first second

let test_simulate_invalid_values () =
  List.iter
    (fun (name, args) -> ignore (check_fails name ("simulate --size 4 " ^ args)))
    [
      ("negative ber", "--ber -1e-4");
      ("negative retries", "--retries -2");
      ("upload loss above 1", "--upload-loss 1.5");
      ("negative brownout duration", "--brownout-rate 1e-5 --brownout-cycles -3");
      ("unknown policy", "--policy quantum");
      ("checkpoint-every without file", "--checkpoint-every 100");
      ("non-positive checkpoint-every", "--checkpoint-every 0 --checkpoint-file x.bin");
      ("resume from missing file", "--resume definitely-missing.bin");
    ]

let test_simulate_checkpoint_resume () =
  let file = Filename.temp_file "etx_cli_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let flags = "--size 4 --seed 2 --ber 1e-4 --fault-seed 3" in
      let uninterrupted = check_ok "uninterrupted" ("simulate " ^ flags) in
      let checkpointed =
        check_ok "checkpointed"
          (Printf.sprintf "simulate %s --checkpoint-every 15000 --checkpoint-file %s"
             flags (Filename.quote file))
      in
      Alcotest.(check string) "checkpointing never changes the run" uninterrupted
        checkpointed;
      (* the file holds a mid-run snapshot; resuming finishes identically *)
      let resumed =
        check_ok "resumed"
          (Printf.sprintf "simulate %s --resume %s" flags (Filename.quote file))
      in
      Alcotest.(check string) "resume is bit-identical" uninterrupted resumed;
      (* resuming under different flags is rejected with a clean error *)
      ignore
        (check_fails "resume under wrong seed"
           (Printf.sprintf "simulate --size 4 --seed 9 --resume %s" (Filename.quote file))))

let test_simulate_audit_flag () =
  let output = check_ok "audited simulate" "simulate --size 4 --seed 1 --audit" in
  Alcotest.(check bool) "audit summary printed" true (contains output "audit:");
  Alcotest.(check bool) "no violations" true (contains output "0 violation(s)")

let test_audit_subcommand () =
  let output = check_ok "audit" "audit --sizes 4 --seeds 1 --every 2" in
  Alcotest.(check bool) "per-config report" true (contains output "4x4 seed 1:");
  Alcotest.(check bool) "clean" true (contains output "0 violation(s)");
  ignore (check_fails "audit invalid cadence" "audit --sizes 4 --seeds 1 --every 0");
  ignore (check_fails "audit invalid size" "audit --sizes 1")

let test_resilience_subcommand () =
  let output =
    check_ok "resilience"
      "resilience --size 4 --ber-rates 0 --wearout-rates 1e-5 --seeds 1 --fault-seed 11"
  in
  Alcotest.(check bool) "bit-error axis" true (contains output "bit-error");
  Alcotest.(check bool) "wear-out axis" true (contains output "wear-out")

let test_resilience_invalid_values () =
  List.iter
    (fun (name, args) -> ignore (check_fails name ("resilience " ^ args)))
    [
      ("mesh too small", "--size 1");
      ("negative rate", "--size 4 --ber-rates -1e-4 --seeds 1");
      ("negative sweep retries", "--size 4 --seeds 1 --sweep-retries -1");
    ]

let test_resilience_manifest_resume () =
  let file = Filename.temp_file "etx_cli_manifest" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let args =
        Printf.sprintf
          "resilience --size 4 --ber-rates 0,1e-4 --wearout-rates 0 --seeds 1 \
           --manifest %s"
          (Filename.quote file)
      in
      let first = check_ok "supervised resilience" args in
      Alcotest.(check bool) "manifest written" true (Sys.file_exists file);
      (* the second invocation replays entirely from the manifest *)
      let second = check_ok "resumed resilience" args in
      Alcotest.(check string) "identical table from stored cells" first second)

let suite =
  [
    ( "cli",
      [
        Alcotest.test_case "simulate baseline" `Quick test_simulate_baseline;
        Alcotest.test_case "simulate fault flags" `Quick test_simulate_fault_flags;
        Alcotest.test_case "simulate invalid values" `Quick test_simulate_invalid_values;
        Alcotest.test_case "checkpoint + resume" `Quick test_simulate_checkpoint_resume;
        Alcotest.test_case "simulate --audit" `Quick test_simulate_audit_flag;
        Alcotest.test_case "audit subcommand" `Quick test_audit_subcommand;
        Alcotest.test_case "resilience subcommand" `Slow test_resilience_subcommand;
        Alcotest.test_case "resilience invalid values" `Quick
          test_resilience_invalid_values;
        Alcotest.test_case "resilience manifest resume" `Slow
          test_resilience_manifest_resume;
      ] );
  ]

let () = Alcotest.run "etx-cli" suite
