(* End-to-end tests of the etx binary: the resilience subcommand, the
   PR 3 fault flags on simulate, checkpoint/resume/audit, and non-zero
   exit codes on invalid values.  Driven through the shell so the whole
   cmdliner wiring (parsing, validation, exit codes) is under test. *)

let exe = "../bin/etx_main.exe"

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* run [exe args], capturing interleaved stdout+stderr and the exit code *)
let run_command args =
  let out = Filename.temp_file "etx_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let code = Sys.command (Printf.sprintf "%s %s > %s 2>&1" exe args (Filename.quote out)) in
      let ic = open_in_bin out in
      let output = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (code, output))

(* run a shell script file, capturing interleaved output and exit code *)
let run_script script =
  let out = Filename.temp_file "etx_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "sh %s > %s 2>&1" (Filename.quote script)
             (Filename.quote out))
      in
      let ic = open_in_bin out in
      let output = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (code, output))

let check_ok name args =
  let code, output = run_command args in
  if code <> 0 then Alcotest.failf "%s: exit %d\n%s" name code output;
  output

let check_fails name args =
  let code, output = run_command args in
  if code = 0 then Alcotest.failf "%s: expected non-zero exit\n%s" name output;
  output

let test_simulate_baseline () =
  let output = check_ok "simulate" "simulate --size 4 --seed 1" in
  Alcotest.(check bool) "prints metrics" true (contains output "jobs completed:")

let test_simulate_fault_flags () =
  let args = "simulate --size 4 --seed 1 --ber 2e-4 --fault-seed 7 --retries 5" in
  let first = check_ok "faulty simulate" args in
  Alcotest.(check bool) "reports corruption counters" true (contains first "faults:");
  (* the fault stream is seeded: the same flags replay the same run *)
  let second = check_ok "faulty simulate (again)" args in
  Alcotest.(check string) "deterministic replay" first second

let test_simulate_invalid_values () =
  List.iter
    (fun (name, args) -> ignore (check_fails name ("simulate --size 4 " ^ args)))
    [
      ("negative ber", "--ber -1e-4");
      ("negative retries", "--retries -2");
      ("upload loss above 1", "--upload-loss 1.5");
      ("negative brownout duration", "--brownout-rate 1e-5 --brownout-cycles -3");
      ("unknown policy", "--policy quantum");
      ("checkpoint-every without file", "--checkpoint-every 100");
      ("non-positive checkpoint-every", "--checkpoint-every 0 --checkpoint-file x.bin");
      ("resume from missing file", "--resume definitely-missing.bin");
    ]

let test_simulate_checkpoint_resume () =
  let file = Filename.temp_file "etx_cli_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let flags = "--size 4 --seed 2 --ber 1e-4 --fault-seed 3" in
      let uninterrupted = check_ok "uninterrupted" ("simulate " ^ flags) in
      let checkpointed =
        check_ok "checkpointed"
          (Printf.sprintf "simulate %s --checkpoint-every 15000 --checkpoint-file %s"
             flags (Filename.quote file))
      in
      Alcotest.(check string) "checkpointing never changes the run" uninterrupted
        checkpointed;
      (* the file holds a mid-run snapshot; resuming finishes identically *)
      let resumed =
        check_ok "resumed"
          (Printf.sprintf "simulate %s --resume %s" flags (Filename.quote file))
      in
      Alcotest.(check string) "resume is bit-identical" uninterrupted resumed;
      (* resuming under different flags is rejected with a clean error *)
      ignore
        (check_fails "resume under wrong seed"
           (Printf.sprintf "simulate --size 4 --seed 9 --resume %s" (Filename.quote file))))

let test_simulate_audit_flag () =
  let output = check_ok "audited simulate" "simulate --size 4 --seed 1 --audit" in
  Alcotest.(check bool) "audit summary printed" true (contains output "audit:");
  Alcotest.(check bool) "no violations" true (contains output "0 violation(s)")

let test_audit_subcommand () =
  let output = check_ok "audit" "audit --sizes 4 --seeds 1 --every 2" in
  Alcotest.(check bool) "per-config report" true (contains output "4x4 seed 1:");
  Alcotest.(check bool) "clean" true (contains output "0 violation(s)");
  ignore (check_fails "audit invalid cadence" "audit --sizes 4 --seeds 1 --every 0");
  ignore (check_fails "audit invalid size" "audit --sizes 1")

let test_resilience_subcommand () =
  let output =
    check_ok "resilience"
      "resilience --size 4 --ber-rates 0 --wearout-rates 1e-5 --seeds 1 --fault-seed 11"
  in
  Alcotest.(check bool) "bit-error axis" true (contains output "bit-error");
  Alcotest.(check bool) "wear-out axis" true (contains output "wear-out")

let test_resilience_invalid_values () =
  List.iter
    (fun (name, args) -> ignore (check_fails name ("resilience " ^ args)))
    [
      ("mesh too small", "--size 1");
      ("negative rate", "--size 4 --ber-rates -1e-4 --seeds 1");
      ("negative sweep retries", "--size 4 --seeds 1 --sweep-retries -1");
    ]

(* - version / help consistency - *)

let test_version_everywhere () =
  List.iter
    (fun cmd ->
      let output = check_ok ("--version on " ^ cmd) (cmd ^ " --version") in
      if not (contains output "1.1.0") then
        Alcotest.failf "%s --version: %S lacks the version" cmd output)
    [ ""; "simulate"; "fig7"; "audit"; "resilience"; "serve"; "client"; "thm1" ]

let test_help_everywhere () =
  List.iter
    (fun cmd -> ignore (check_ok ("--help on " ^ cmd) (cmd ^ " --help")))
    [ ""; "simulate"; "fig7"; "audit"; "serve"; "client" ]

(* - the simulation service - *)

let write_lines path lines =
  let oc = open_out path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc

let test_serve_stdio_miss_then_hit () =
  let input = Filename.temp_file "etx_cli_serve" ".in" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove input with Sys_error _ -> ())
    (fun () ->
      write_lines input
        [
          {|{"scenario":"simulate","params":{"mesh_size":4},"id":1}|};
          "";
          {|{"scenario":"simulate","params":{"mesh_size":4},"id":2}|};
          "";
        ];
      let output =
        check_ok "serve --stdio"
          (Printf.sprintf "serve --stdio --jobs 1 < %s" (Filename.quote input))
      in
      Alcotest.(check bool) "first is a miss" true (contains output "\"cache\":\"miss\"");
      Alcotest.(check bool) "second is a hit" true (contains output "\"cache\":\"hit\""))

let test_serve_stdio_queue_full () =
  let input = Filename.temp_file "etx_cli_serve" ".in" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove input with Sys_error _ -> ())
    (fun () ->
      write_lines input
        [
          {|{"scenario":"simulate","params":{"mesh_size":4,"seed":1},"id":1}|};
          {|{"scenario":"simulate","params":{"mesh_size":4,"seed":2},"id":2}|};
          "";
          {|{"scenario":"ping","id":3}|};
          "";
        ];
      let output =
        check_ok "serve --stdio --queue-depth 1"
          (Printf.sprintf "serve --stdio --queue-depth 1 --jobs 1 < %s"
             (Filename.quote input))
      in
      Alcotest.(check bool) "burst rejected structurally" true
        (contains output "\"error\":\"queue_full\"");
      (* the server outlived the rejection and answered the next batch *)
      Alcotest.(check bool) "still serving" true (contains output "\"result\":\"pong\""))

let test_serve_invalid_flags () =
  ignore (check_fails "zero queue depth" "serve --stdio --queue-depth 0 < /dev/null");
  ignore (check_fails "negative cache" "serve --stdio --cache-capacity -1 < /dev/null")

let test_serve_bad_failpoints () =
  let output =
    check_fails "malformed failpoint spec"
      "serve --stdio --failpoints 'store.fsync=bogus' < /dev/null"
  in
  Alcotest.(check bool) "names the bad spec" true (contains output "bogus")

let test_crashtest_smoke () =
  let script = Filename.temp_file "etx_cli_crash" ".sh" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove script with Sys_error _ -> ())
    (fun () ->
      let oc = open_out script in
      Printf.fprintf oc
        {|set -e
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
%s crashtest --seed 3 --dir "$dir"
|}
        exe;
      close_out oc;
      let code, output = run_script script in
      if code <> 0 then Alcotest.failf "crashtest: exit %d\n%s" code output;
      List.iter
        (fun part ->
          Alcotest.(check bool)
            (part ^ " part ran clean") true
            (contains output (Printf.sprintf "crashtest %-10s seed 3" part)))
        [ "store"; "checkpoint"; "manifest" ];
      Alcotest.(check int) "every part reports zero violations" 3
        (List.length
           (String.split_on_char '\n' output
           |> List.filter (fun l -> contains l "0 violation(s)"))))

let test_serve_sigterm_drain () =
  let socket = Filename.temp_file "etx_cli_drain" ".sock" in
  Sys.remove socket;
  let script = Filename.temp_file "etx_cli_drain" ".sh" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ socket; script ])
    (fun () ->
      let oc = open_out script in
      Printf.fprintf oc
        {|set -e
%s serve --socket %s --jobs 1 &
server=$!
for _ in $(seq 100); do [ -S %s ] && break; sleep 0.1; done
[ -S %s ]
%s client --socket %s '{"scenario":"simulate","params":{"mesh_size":4},"id":1}'
kill -TERM $server
wait $server
echo "drained exit ok"
|}
        exe socket socket socket exe socket;
      close_out oc;
      let code, output = run_script script in
      if code <> 0 then Alcotest.failf "sigterm drain script: exit %d\n%s" code output;
      Alcotest.(check bool) "clean exit after SIGTERM" true
        (contains output "drained exit ok");
      Alcotest.(check bool) "socket removed on drain" false (Sys.file_exists socket))

let test_client_socket_round_trip () =
  let socket = Filename.temp_file "etx_cli_service" ".sock" in
  Sys.remove socket;
  let script = Filename.temp_file "etx_cli_service" ".sh" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ socket; script ])
    (fun () ->
      (* one shell script so the server is reaped before the test ends *)
      let oc = open_out script in
      Printf.fprintf oc
        {|set -e
%s serve --socket %s --jobs 1 &
server=$!
for _ in $(seq 100); do [ -S %s ] && break; sleep 0.1; done
[ -S %s ]
%s client --socket %s '{"scenario":"simulate","params":{"mesh_size":4},"id":"first"}'
%s client --socket %s '{"scenario":"simulate","params":{"mesh_size":4},"id":"second"}'
if %s client --socket %s '{"scenario":"simulate","params":{"policy":"quantum"}}'; then
  echo "BAD: error response did not fail the client"
  exit 1
fi
%s client --socket %s '{"scenario":"shutdown"}'
wait $server
echo "server exit ok"
|}
        exe socket socket socket exe socket exe socket exe socket exe socket;
      close_out oc;
      let code, output = run_script script in
      if code <> 0 then Alcotest.failf "service script: exit %d\n%s" code output;
      Alcotest.(check bool) "first client misses" true
        (contains output "\"cache\":\"miss\"");
      Alcotest.(check bool) "second client hits the cache" true
        (contains output "\"cache\":\"hit\"");
      Alcotest.(check bool) "clean server exit" true (contains output "server exit ok");
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket))

let test_resilience_manifest_resume () =
  let file = Filename.temp_file "etx_cli_manifest" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let args =
        Printf.sprintf
          "resilience --size 4 --ber-rates 0,1e-4 --wearout-rates 0 --seeds 1 \
           --manifest %s"
          (Filename.quote file)
      in
      let first = check_ok "supervised resilience" args in
      Alcotest.(check bool) "manifest written" true (Sys.file_exists file);
      (* the second invocation replays entirely from the manifest *)
      let second = check_ok "resumed resilience" args in
      Alcotest.(check string) "identical table from stored cells" first second)

let suite =
  [
    ( "cli",
      [
        Alcotest.test_case "simulate baseline" `Quick test_simulate_baseline;
        Alcotest.test_case "simulate fault flags" `Quick test_simulate_fault_flags;
        Alcotest.test_case "simulate invalid values" `Quick test_simulate_invalid_values;
        Alcotest.test_case "checkpoint + resume" `Quick test_simulate_checkpoint_resume;
        Alcotest.test_case "simulate --audit" `Quick test_simulate_audit_flag;
        Alcotest.test_case "audit subcommand" `Quick test_audit_subcommand;
        Alcotest.test_case "resilience subcommand" `Slow test_resilience_subcommand;
        Alcotest.test_case "resilience invalid values" `Quick
          test_resilience_invalid_values;
        Alcotest.test_case "resilience manifest resume" `Slow
          test_resilience_manifest_resume;
        Alcotest.test_case "--version everywhere" `Quick test_version_everywhere;
        Alcotest.test_case "--help everywhere" `Quick test_help_everywhere;
        Alcotest.test_case "serve --stdio miss then hit" `Quick
          test_serve_stdio_miss_then_hit;
        Alcotest.test_case "serve --stdio queue_full" `Quick
          test_serve_stdio_queue_full;
        Alcotest.test_case "serve invalid flags" `Quick test_serve_invalid_flags;
        Alcotest.test_case "serve rejects bad --failpoints" `Quick
          test_serve_bad_failpoints;
        Alcotest.test_case "crashtest smoke" `Slow test_crashtest_smoke;
        Alcotest.test_case "serve drains on SIGTERM" `Slow test_serve_sigterm_drain;
        Alcotest.test_case "client socket round trip" `Slow
          test_client_socket_round_trip;
      ] );
  ]

let () = Alcotest.run "etx-cli" suite
