let () =
  Alcotest.run "etextile"
    (Test_util.suite @ Test_pool.suite @ Test_json.suite @ Test_graph.suite
   @ Test_battery.suite @ Test_energy.suite
   @ Test_aes.suite @ Test_routing.suite @ Test_etsim.suite @ Test_fault.suite @ Test_workload.suite
   @ Test_analysis.suite @ Test_invariants.suite @ Test_scenario.suite @ Test_coverage.suite
   @ Test_edge.suite
   @ Test_experiments.suite @ Test_checkpoint.suite @ Test_audit.suite
   @ Test_metrics_wire.suite @ Test_service.suite @ Test_cluster.suite
   @ Test_incremental.suite @ Test_failpoint.suite @ Test_supervisor.suite
   @ Test_obs.suite)
