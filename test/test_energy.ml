(* Tests for etx_energy: transmission lines, computation constants,
   packets, controller power. *)

module Line = Etx_energy.Transmission_line
module Computation = Etx_energy.Computation
module Packet = Etx_energy.Packet
module Controller_power = Etx_energy.Controller_power

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))

(* - Transmission lines - *)

let test_line_paper_anchors () =
  (* the four SPICE-measured values of Sec 5.1.2, reproduced exactly *)
  check_float "1 cm" 0.4472 (Line.energy_per_bit Line.paper_lines ~length_cm:1.);
  check_float "10 cm" 4.4472 (Line.energy_per_bit Line.paper_lines ~length_cm:10.);
  check_float "20 cm" 11.867 (Line.energy_per_bit Line.paper_lines ~length_cm:20.);
  check_float "100 cm" 53.082 (Line.energy_per_bit Line.paper_lines ~length_cm:100.)

let test_line_interpolation () =
  (* midpoint of the 10-20 cm segment *)
  check_float "15 cm" ((4.4472 +. 11.867) /. 2.)
    (Line.energy_per_bit Line.paper_lines ~length_cm:15.)

let test_line_monotone () =
  let previous = ref 0. in
  for i = 1 to 120 do
    let e = Line.energy_per_bit Line.paper_lines ~length_cm:(float_of_int i) in
    Alcotest.(check bool) "longer line costs more" true (e > !previous);
    previous := e
  done

let test_line_sub_centimeter_proportional () =
  check_float "0.5 cm scales" (0.4472 /. 2.)
    (Line.energy_per_bit Line.paper_lines ~length_cm:0.5)

let test_line_extrapolation () =
  (* beyond 100 cm: last segment slope continued *)
  let slope = (53.082 -. 11.867) /. 80. in
  check_float_eps 1e-9 "120 cm" (53.082 +. (20. *. slope))
    (Line.energy_per_bit Line.paper_lines ~length_cm:120.)

let test_line_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Transmission_line.of_measurements: empty")
    (fun () -> ignore (Line.of_measurements []));
  Alcotest.check_raises "bad length" (Invalid_argument "Transmission_line: non-positive length")
    (fun () -> ignore (Line.of_measurements [ (0., 1.) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Transmission_line: duplicate length")
    (fun () -> ignore (Line.of_measurements [ (1., 1.); (1., 2.) ]));
  Alcotest.check_raises "query" (Invalid_argument "Transmission_line.energy_per_bit: non-positive length")
    (fun () -> ignore (Line.energy_per_bit Line.paper_lines ~length_cm:0.))

let test_line_single_anchor () =
  let line = Line.of_measurements [ (2., 1.) ] in
  check_float "scales linearly" 2. (Line.energy_per_bit line ~length_cm:4.)

let test_line_anchors_accessor () =
  Alcotest.(check int) "four anchors" 4 (List.length (Line.anchors Line.paper_lines))

let test_line_packet_energy () =
  check_float "packet over 1 cm" (0.4472 *. 261.)
    (Line.packet_energy Line.paper_lines ~length_cm:1. ~bits:261)

(* - Computation - *)

let test_computation_paper_values () =
  check_float "module 1" 120.1 (Computation.energy_per_act Computation.aes ~module_index:0);
  check_float "module 2" 73.34 (Computation.energy_per_act Computation.aes ~module_index:1);
  check_float "module 3" 176.55 (Computation.energy_per_act Computation.aes ~module_index:2);
  Alcotest.(check int) "three modules" 3 (Computation.module_count Computation.aes)

let test_computation_custom () =
  let t = Computation.custom ~energies_pj:[| 1.; 2. |] in
  check_float "entry" 2. (Computation.energy_per_act t ~module_index:1);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Computation.energy_per_act: bad module index") (fun () ->
      ignore (Computation.energy_per_act t ~module_index:2));
  Alcotest.check_raises "empty" (Invalid_argument "Computation.custom: empty table")
    (fun () -> ignore (Computation.custom ~energies_pj:[||]));
  Alcotest.check_raises "negative" (Invalid_argument "Computation.custom: negative energy")
    (fun () -> ignore (Computation.custom ~energies_pj:[| -1. |]))

let test_computation_isolated_from_caller () =
  let energies = [| 5. |] in
  let t = Computation.custom ~energies_pj:energies in
  energies.(0) <- 99.;
  check_float "defensive copy" 5. (Computation.energy_per_act t ~module_index:0)

(* - Packet - *)

let test_packet_default_size () =
  (* 261 bits is the size that makes Theorem 1 reproduce Table 2 *)
  Alcotest.(check int) "261 bits" 261 (Packet.total_bits Packet.aes_default)

let test_packet_hop_energy () =
  check_float "c_i = 116.72 pJ over 1 cm" (261. *. 0.4472)
    (Packet.hop_energy Packet.aes_default ~line:Line.paper_lines ~length_cm:1.)

let test_packet_serialization () =
  Alcotest.(check int) "261 bits over 32-bit link" 9
    (Packet.serialization_cycles Packet.aes_default ~link_width_bits:32);
  Alcotest.(check int) "exact division" 3
    (Packet.serialization_cycles (Packet.make ~payload_bits:6 ~header_bits:0)
       ~link_width_bits:2);
  Alcotest.check_raises "bad width"
    (Invalid_argument "Packet.serialization_cycles: non-positive width") (fun () ->
      ignore (Packet.serialization_cycles Packet.aes_default ~link_width_bits:0))

let test_packet_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Packet.make: negative field size")
    (fun () -> ignore (Packet.make ~payload_bits:(-1) ~header_bits:0));
  Alcotest.check_raises "zero" (Invalid_argument "Packet.make: zero-bit packet") (fun () ->
      ignore (Packet.make ~payload_bits:0 ~header_bits:0))

(* - Controller power - *)

let test_controller_anchor () =
  check_float_eps 1e-9 "dynamic at 4x4" 69.4
    (Controller_power.dynamic_pj_per_cycle Controller_power.paper_anchor ~node_count:16);
  check_float_eps 1e-9 "leakage at 4x4" 5.7
    (Controller_power.leakage_pj_per_cycle Controller_power.paper_anchor ~node_count:16)

let test_controller_scaling () =
  check_float_eps 1e-9 "linear in K" (69.4 *. 4.)
    (Controller_power.dynamic_pj_per_cycle Controller_power.paper_anchor ~node_count:64)

let test_controller_recompute_cycles () =
  Alcotest.(check int) "K^2" 256 (Controller_power.recompute_cycles ~node_count:16)

let test_controller_validation () =
  Alcotest.check_raises "power" (Invalid_argument "Controller_power.make: non-positive power")
    (fun () -> ignore (Controller_power.make ~dynamic_mw:0. ~leakage_mw:1. ~anchor_nodes:16))

let prop_line_interpolation_between_anchors =
  QCheck.Test.make ~name:"line: interpolation stays within anchor bracket" ~count:200
    QCheck.(float_range 1. 100.)
    (fun length_cm ->
      let e = Line.energy_per_bit Line.paper_lines ~length_cm in
      e >= 0.4472 -. 1e-9 && e <= 53.082 +. 1e-9)

let suite =
  [
    ( "energy/transmission-line",
      [
        Alcotest.test_case "paper anchors exact" `Quick test_line_paper_anchors;
        Alcotest.test_case "interpolation" `Quick test_line_interpolation;
        Alcotest.test_case "monotone in length" `Quick test_line_monotone;
        Alcotest.test_case "sub-cm proportional" `Quick test_line_sub_centimeter_proportional;
        Alcotest.test_case "extrapolation" `Quick test_line_extrapolation;
        Alcotest.test_case "validation" `Quick test_line_validation;
        Alcotest.test_case "single anchor" `Quick test_line_single_anchor;
        Alcotest.test_case "anchors accessor" `Quick test_line_anchors_accessor;
        Alcotest.test_case "packet energy" `Quick test_line_packet_energy;
        QCheck_alcotest.to_alcotest prop_line_interpolation_between_anchors;
      ] );
    ( "energy/computation",
      [
        Alcotest.test_case "paper values" `Quick test_computation_paper_values;
        Alcotest.test_case "custom tables" `Quick test_computation_custom;
        Alcotest.test_case "defensive copy" `Quick test_computation_isolated_from_caller;
      ] );
    ( "energy/packet",
      [
        Alcotest.test_case "default 261 bits" `Quick test_packet_default_size;
        Alcotest.test_case "hop energy" `Quick test_packet_hop_energy;
        Alcotest.test_case "serialization" `Quick test_packet_serialization;
        Alcotest.test_case "validation" `Quick test_packet_validation;
      ] );
    ( "energy/controller-power",
      [
        Alcotest.test_case "paper anchor" `Quick test_controller_anchor;
        Alcotest.test_case "scaling" `Quick test_controller_scaling;
        Alcotest.test_case "recompute cycles" `Quick test_controller_recompute_cycles;
        Alcotest.test_case "validation" `Quick test_controller_validation;
      ] );
  ]
