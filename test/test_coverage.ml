(* Edge-case and rendering coverage across the libraries: behaviours the
   main suites do not reach (pretty-printers, degenerate inputs, less
   common configuration paths). *)

module Topology = Etx_graph.Topology
module Digraph = Etx_graph.Digraph
module Engine = Etx_etsim.Engine
module Metrics = Etx_etsim.Metrics
module Config = Etx_etsim.Config
module Trace = Etx_etsim.Trace
module Timeline = Etx_etsim.Timeline
module Battery = Etx_battery.Battery

let contains = Astring_contains.contains
let format_to_string pp value = Format.asprintf "%a" pp value

(* - pretty printers - *)

let test_trace_event_printers () =
  let events =
    [
      (Trace.Job_launched { job = 1; entry = 2; cycle = 3 }, "launched");
      (Trace.Act_completed { job = 1; node = 2; module_index = 0; cycle = 3 }, "module 1");
      (Trace.Packet_sent { job = 1; src = 2; dst = 3; cycle = 4 }, "packet");
      (Trace.Job_completed { job = 1; cycle = 2; verified = true }, "verified");
      (Trace.Job_completed { job = 1; cycle = 2; verified = false }, "FAILED");
      (Trace.Job_lost { job = 1; node = 2; cycle = 3 }, "lost");
      (Trace.Node_death { node = 1; cycle = 2 }, "died");
      (Trace.Frame_run { cycle = 1; recomputed = true }, "recomputed");
      (Trace.Frame_run { cycle = 1; recomputed = false }, "frame");
      (Trace.Deadlock_report { node = 1; hop = 2; cycle = 3 }, "deadlock");
      (Trace.Controller_failover { survivors = 1; cycle = 2 }, "failover");
      (Trace.System_death { cycle = 1; reason = "the reason" }, "the reason");
      (Trace.Link_wearout { a = 1; b = 2; cycle = 3 }, "wore out");
      (Trace.Packet_corrupted { job = 1; src = 2; dst = 3; attempt = 1; cycle = 4 }, "corrupted");
      (Trace.Retransmission { job = 1; src = 2; dst = 3; attempt = 2; cycle = 4 }, "retransmit");
      (Trace.Packet_dropped { job = 1; src = 2; dst = 3; cycle = 4 }, "retries exhausted");
      (Trace.Node_brownout { node = 1; until = 900; cycle = 4 }, "browned out");
      (Trace.Upload_dropped { node = 1; cycle = 2 }, "upload");
      (Trace.Download_dropped { cycle = 2 }, "stale");
    ]
  in
  List.iter
    (fun (event, needle) ->
      let rendered = format_to_string Trace.pp_event event in
      Alcotest.(check bool) needle true (contains rendered needle))
    events

let test_trace_pp_notes_drops () =
  let t = Trace.create ~capacity:1 in
  Trace.record t (Trace.Node_death { node = 0; cycle = 0 });
  Trace.record t (Trace.Node_death { node = 1; cycle = 1 });
  Alcotest.(check bool) "mentions dropped" true
    (contains (format_to_string Trace.pp t) "dropped")

let test_timeline_pp_sparkline () =
  let t = Timeline.create () in
  Timeline.record t
    {
      Timeline.cycle = 0;
      jobs_completed = 0;
      jobs_in_flight = 1;
      alive_nodes = 4;
      mean_soc = 1.0;
      min_soc = 1.0;
      total_remaining_pj = 100.;
      deadlocked_ports = 0;
    };
  let rendered = format_to_string Timeline.pp t in
  Alcotest.(check bool) "frame count" true (contains rendered "1 frames");
  Alcotest.(check bool) "sparkline rows" true (contains rendered "mean soc")

let test_metrics_pp () =
  let m =
    Engine.simulate
      (Etextile.Calibration.config ~mesh_size:4 ~seed:1 ()
      |> fun c -> { c with Config.max_jobs = Some 3 })
  in
  let rendered = format_to_string Metrics.pp m in
  Alcotest.(check bool) "jobs line" true (contains rendered "jobs completed: 3");
  Alcotest.(check bool) "energy line" true (contains rendered "energy (pJ)")

let test_matrix_pp () =
  let m = Etx_util.Matrix.create ~dim:2 ~init:infinity in
  Etx_util.Matrix.set m 0 0 0.;
  let rendered = format_to_string Etx_util.Matrix.pp m in
  Alcotest.(check bool) "inf rendered" true (contains rendered "inf");
  let mi = Etx_util.Matrix.Int.create ~dim:2 ~init:(-1) in
  Alcotest.(check bool) "int matrix" true
    (contains (format_to_string Etx_util.Matrix.Int.pp mi) "-1")

let test_digraph_pp () =
  let g = Digraph.create ~node_count:2 in
  Digraph.add_edge g ~src:0 ~dst:1 ~length:2.5;
  let rendered = format_to_string Digraph.pp g in
  Alcotest.(check bool) "edge listed" true (contains rendered "0 -> 1")

let test_units_pp () =
  Alcotest.(check string) "pJ" "500.000 pJ"
    (format_to_string Etx_util.Units.pp_picojoules 500.);
  Alcotest.(check string) "nJ" "1.500 nJ"
    (format_to_string Etx_util.Units.pp_picojoules 1500.);
  Alcotest.(check string) "uJ" "2.000 uJ"
    (format_to_string Etx_util.Units.pp_picojoules 2e6)

let test_routing_table_pp () =
  let t = Etx_routing.Routing_table.create ~node_count:2 ~module_count:1 in
  Etx_routing.Routing_table.set t ~node:0 ~module_index:0
    (Etx_routing.Routing_table.Forward { next_hop = 1; destination = 1 });
  let rendered = format_to_string Etx_routing.Routing_table.pp t in
  Alcotest.(check bool) "forward entry" true (contains rendered "->1");
  Alcotest.(check bool) "unreachable entry" true (contains rendered "unreachable")

let test_topology_pp_kind () =
  Alcotest.(check string) "torus" "4x4 torus"
    (format_to_string Topology.pp_kind (Topology.torus ~rows:4 ~cols:4 ()).Topology.kind)

(* - degenerate inputs - *)

let test_fw_single_node () =
  let w = Etx_util.Matrix.create ~dim:1 ~init:0. in
  let result = Etx_graph.Floyd_warshall.run w in
  Alcotest.(check (float 1e-9)) "self" 0.
    (Etx_graph.Floyd_warshall.distance result ~src:0 ~dst:0)

let test_topology_node_of_coord_missing () =
  let t = Topology.square_mesh ~size:3 () in
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Topology.node_of_coord t ~x:9 ~y:9))

let test_stats_merge_two_empty () =
  let merged = Etx_util.Stats.merge (Etx_util.Stats.create ()) (Etx_util.Stats.create ()) in
  Alcotest.(check int) "still empty" 0 (Etx_util.Stats.count merged)

let test_mesh_minimum_size () =
  let t = Topology.mesh ~rows:1 ~cols:2 () in
  Alcotest.(check int) "two nodes" 2 (Topology.node_count t);
  Alcotest.(check int) "one bidirectional link" 2 (Digraph.edge_count t.Topology.graph)

let test_heatmap_without_legend () =
  let t = Topology.square_mesh ~size:2 () in
  let rendered =
    Etextile.Heatmap.render ~topology:t ~values:(Array.make 4 0.5) ~legend:false ()
  in
  Alcotest.(check bool) "no legend" false (contains rendered "tenths")

let test_workload_plan_copy_isolated () =
  let w = Etx_etsim.Workload.aes_encrypt ~key_hex:"000102030405060708090a0b0c0d0e0f" in
  let plan = Etx_etsim.Workload.plan w in
  plan.(0) <- { Etx_etsim.Workload.module_index = 0; tag = 99 };
  Alcotest.(check bool) "internal plan untouched" true
    (match Etx_etsim.Workload.act_at w ~step:0 with
    | Some act -> act.Etx_etsim.Workload.module_index = 2
    | None -> false)

(* - engine configuration paths - *)

let calibrated ?policy ?link_width ~seed size =
  let base = Etextile.Calibration.config ?policy ~mesh_size:size ~seed () in
  match link_width with
  | None -> base
  | Some w -> { base with Config.link_width_bits = w }

let test_engine_fixed_entry_runs () =
  let base = Etextile.Calibration.config ~mesh_size:4 ~seed:1 () in
  let config = { base with Config.job_source = Config.Fixed_entry 5 } in
  let m = Engine.simulate config in
  Alcotest.(check bool) "completes jobs" true (m.Metrics.jobs_completed > 10)

let test_engine_narrow_link_raises_latency () =
  let latency width =
    (Engine.simulate (calibrated ~link_width:width ~seed:1 4)).Metrics.job_latency_mean_cycles
  in
  Alcotest.(check bool) "serialization dominates latency" true (latency 2 > latency 64)

let test_engine_wider_levels_policy () =
  let m =
    Engine.simulate
      (calibrated ~policy:(Etx_routing.Policy.ear ~levels:16 ()) ~seed:1 4)
  in
  Alcotest.(check bool) "still works" true (m.Metrics.jobs_completed > 20)

let test_engine_torus_platform () =
  (* wrap-around links give the corner entry more neighbours *)
  let topology = Topology.torus ~rows:4 ~cols:4 () in
  let config =
    Config.make ~topology ~policy:(Etx_routing.Policy.ear ())
      ~frame_period_cycles:800 ~reception_energy_fraction:0.8
      ~job_source:Config.Round_robin_entry ~seed:1 ()
  in
  let m = Engine.simulate config in
  Alcotest.(check bool) "torus runs" true (m.Metrics.jobs_completed > 10);
  Alcotest.(check int) "verified" m.jobs_completed m.jobs_verified

let test_engine_latency_metrics_consistent () =
  let m = Engine.simulate (calibrated ~seed:1 4) in
  Alcotest.(check bool) "mean <= max" true
    (m.Metrics.job_latency_mean_cycles <= float_of_int m.Metrics.job_latency_max_cycles);
  Alcotest.(check bool) "max <= lifetime" true
    (m.Metrics.job_latency_max_cycles <= m.Metrics.lifetime_cycles)

let test_engine_hops_per_act_band () =
  let m = Engine.simulate (calibrated ~seed:1 6) in
  let hops = Metrics.mean_hops_per_act m in
  (* checkerboard meshes route most acts over 1-2 hops *)
  Alcotest.(check bool) "in band" true (hops >= 1. && hops <= 2.)

let test_engine_controller_metrics_exposed () =
  let config =
    { (calibrated ~seed:1 4) with
      Config.controllers = Config.Battery_controllers { count = 2 } }
  in
  let m = Engine.simulate config in
  Alcotest.(check bool) "controller energy metered" true
    (m.Metrics.controller_compute_energy_pj > 0.);
  Alcotest.(check bool) "stranded + residual controllers accounted" true
    (m.Metrics.stranded_controller_energy_pj +. m.residual_controller_energy_pj >= 0.)

let test_death_reason_strings () =
  List.iter
    (fun (reason, needle) ->
      Alcotest.(check bool) needle true
        (contains (Metrics.death_reason_string reason) needle))
    [
      (Metrics.Job_lost_to_node_death { node = 3; job = 7 }, "node 3");
      (Metrics.Module_unreachable { module_index = 1; from_node = 2 }, "module 2");
      (Metrics.Entry_node_dead { node = 0 }, "entry");
      (Metrics.Controllers_exhausted, "controller");
      (Metrics.Cycle_limit, "cycle");
      (Metrics.Job_limit, "cap");
      (Metrics.Job_lost_to_brownout { node = 4; job = 9 }, "browned out");
    ]

(* - analysis/report coverage - *)

let test_predictions_report_renders () =
  let rendered =
    Etextile.Report.predictions
      (Etextile.Experiments.predictions ~sizes:[ 4 ] ~seeds:[ 1 ] ())
  in
  Alcotest.(check bool) "has error column" true (contains rendered "error");
  Alcotest.(check bool) "mesh row" true (contains rendered "4x4")

let test_calibration_failure_schedule_passthrough () =
  let topology = Topology.square_mesh ~size:4 () in
  let schedule =
    Etextile.Experiments.random_failure_schedule ~topology ~count:2 ~before_cycle:100
      ~seed:1
  in
  let config =
    Etextile.Calibration.config ~link_failure_schedule:schedule ~mesh_size:4 ~seed:1 ()
  in
  Alcotest.(check int) "schedule kept" 2 (List.length config.Config.link_failure_schedule)

let suite =
  [
    ( "coverage/printers",
      [
        Alcotest.test_case "trace events" `Quick test_trace_event_printers;
        Alcotest.test_case "trace drop note" `Quick test_trace_pp_notes_drops;
        Alcotest.test_case "timeline sparkline" `Quick test_timeline_pp_sparkline;
        Alcotest.test_case "metrics report" `Quick test_metrics_pp;
        Alcotest.test_case "matrices" `Quick test_matrix_pp;
        Alcotest.test_case "digraph" `Quick test_digraph_pp;
        Alcotest.test_case "units" `Quick test_units_pp;
        Alcotest.test_case "routing table" `Quick test_routing_table_pp;
        Alcotest.test_case "topology kind" `Quick test_topology_pp_kind;
        Alcotest.test_case "death reasons" `Quick test_death_reason_strings;
      ] );
    ( "coverage/degenerate",
      [
        Alcotest.test_case "single-node Floyd-Warshall" `Quick test_fw_single_node;
        Alcotest.test_case "missing coordinate" `Quick test_topology_node_of_coord_missing;
        Alcotest.test_case "merge two empty stats" `Quick test_stats_merge_two_empty;
        Alcotest.test_case "1xN mesh" `Quick test_mesh_minimum_size;
        Alcotest.test_case "heatmap without legend" `Quick test_heatmap_without_legend;
        Alcotest.test_case "workload plan copies" `Quick test_workload_plan_copy_isolated;
      ] );
    ( "coverage/engine-configs",
      [
        Alcotest.test_case "fixed entry" `Quick test_engine_fixed_entry_runs;
        Alcotest.test_case "narrow link latency" `Quick
          test_engine_narrow_link_raises_latency;
        Alcotest.test_case "finer battery levels" `Quick test_engine_wider_levels_policy;
        Alcotest.test_case "torus platform" `Quick test_engine_torus_platform;
        Alcotest.test_case "latency metrics consistent" `Quick
          test_engine_latency_metrics_consistent;
        Alcotest.test_case "hops per act band" `Quick test_engine_hops_per_act_band;
        Alcotest.test_case "controller metrics" `Quick test_engine_controller_metrics_exposed;
      ] );
    ( "coverage/reporting",
      [
        Alcotest.test_case "predictions table" `Slow test_predictions_report_renders;
        Alcotest.test_case "failure schedule passthrough" `Quick
          test_calibration_failure_schedule_passthrough;
      ] );
  ]
