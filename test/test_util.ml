(* Tests for etx_util: PRNG, statistics, matrices, tables, units. *)

module Prng = Etx_util.Prng
module Stats = Etx_util.Stats
module Matrix = Etx_util.Matrix
module Table = Etx_util.Table
module Units = Etx_util.Units

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))

(* - PRNG - *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_int_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Prng.int t ~bound:17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_covers_range () =
  let t = Prng.create ~seed:9 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Prng.int t ~bound:8) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_float_bounds () =
  let t = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Prng.float t ~bound:3.5 in
    Alcotest.(check bool) "in range" true (x >= 0. && x < 3.5)
  done

let test_prng_float_mean () =
  let t = Prng.create ~seed:13 in
  let stats = Stats.create () in
  for _ = 1 to 10_000 do
    Stats.add stats (Prng.float t ~bound:1.)
  done;
  check_float_eps 0.02 "uniform mean near 0.5" 0.5 (Stats.mean stats)

let test_prng_bool_balance () =
  let t = Prng.create ~seed:17 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool t then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4500 && !trues < 5500)

let test_prng_bytes_length () =
  let t = Prng.create ~seed:19 in
  Alcotest.(check int) "length" 16 (Bytes.length (Prng.bytes t ~len:16))

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:23 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_copy_independent () =
  let a = Prng.create ~seed:29 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copies agree" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split_differs () =
  let a = Prng.create ~seed:31 in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_byte_range () =
  let t = Prng.create ~seed:37 in
  for _ = 1 to 1000 do
    let b = Prng.byte t in
    Alcotest.(check bool) "byte range" true (b >= 0 && b <= 255)
  done

(* - Stats - *)

let test_stats_basic () =
  let t = Stats.of_list [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "count" 4 (Stats.count t);
  check_float "mean" 2.5 (Stats.mean t);
  check_float "min" 1. (Stats.min t);
  check_float "max" 4. (Stats.max t);
  check_float "total" 10. (Stats.total t);
  check_float_eps 1e-9 "variance" (5. /. 3.) (Stats.variance t)

let test_stats_single_observation () =
  let t = Stats.of_list [ 42. ] in
  check_float "variance of one" 0. (Stats.variance t);
  check_float "stddev of one" 0. (Stats.stddev t)

let test_stats_merge_equals_concat () =
  let a = Stats.of_list [ 1.; 5.; 9. ] and b = Stats.of_list [ 2.; 4. ] in
  let merged = Stats.merge a b in
  let direct = Stats.of_list [ 1.; 5.; 9.; 2.; 4. ] in
  Alcotest.(check int) "count" (Stats.count direct) (Stats.count merged);
  check_float_eps 1e-9 "mean" (Stats.mean direct) (Stats.mean merged);
  check_float_eps 1e-9 "variance" (Stats.variance direct) (Stats.variance merged);
  check_float "min" (Stats.min direct) (Stats.min merged);
  check_float "max" (Stats.max direct) (Stats.max merged)

let test_stats_merge_empty () =
  let a = Stats.create () and b = Stats.of_list [ 3.; 7. ] in
  let merged = Stats.merge a b in
  check_float "mean survives empty merge" 5. (Stats.mean merged);
  Alcotest.(check int) "count" 2 (Stats.count merged)

let test_stats_percentile () =
  let xs = [ 10.; 20.; 30.; 40.; 50. ] in
  check_float "median" 30. (Stats.percentile xs ~p:0.5);
  check_float "p0" 10. (Stats.percentile xs ~p:0.);
  check_float "p100" 50. (Stats.percentile xs ~p:1.);
  check_float "p25" 20. (Stats.percentile xs ~p:0.25)

let test_stats_percentile_interpolates () =
  check_float "interpolated" 15. (Stats.percentile [ 10.; 20. ] ~p:0.5)

let test_stats_percentile_empty () =
  Alcotest.check_raises "empty list" (Invalid_argument "Stats.percentile: empty list")
    (fun () -> ignore (Stats.percentile [] ~p:0.5))

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"stats: min <= mean <= max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let t = Stats.of_list xs in
      Stats.min t -. 1e-9 <= Stats.mean t && Stats.mean t <= Stats.max t +. 1e-9)

let prop_stats_merge_commutative =
  QCheck.Test.make ~name:"stats: merge is commutative" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 20) (float_bound_exclusive 100.))
        (list_of_size Gen.(1 -- 20) (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let a = Stats.merge (Stats.of_list xs) (Stats.of_list ys) in
      let b = Stats.merge (Stats.of_list ys) (Stats.of_list xs) in
      Float.abs (Stats.mean a -. Stats.mean b) < 1e-9
      && Float.abs (Stats.variance a -. Stats.variance b) < 1e-6)

(* - Matrix - *)

let test_matrix_create_get_set () =
  let m = Matrix.create ~dim:3 ~init:1.5 in
  Alcotest.(check int) "dim" 3 (Matrix.dim m);
  check_float "init" 1.5 (Matrix.get m 2 2);
  Matrix.set m 1 2 9.;
  check_float "set" 9. (Matrix.get m 1 2);
  check_float "others untouched" 1.5 (Matrix.get m 2 1)

let test_matrix_bad_dim () =
  Alcotest.check_raises "zero dim" (Invalid_argument "Matrix.create: dim must be positive")
    (fun () -> ignore (Matrix.create ~dim:0 ~init:0.))

let test_matrix_init () =
  let m = Matrix.init ~dim:4 ~f:(fun i j -> float_of_int ((i * 10) + j)) in
  check_float "entry" 23. (Matrix.get m 2 3)

let test_matrix_copy_isolated () =
  let m = Matrix.create ~dim:2 ~init:0. in
  let c = Matrix.copy m in
  Matrix.set c 0 0 5.;
  check_float "original untouched" 0. (Matrix.get m 0 0)

let test_matrix_map () =
  let m = Matrix.init ~dim:2 ~f:(fun i j -> float_of_int (i + j)) in
  let doubled = Matrix.map m ~f:(fun x -> 2. *. x) in
  check_float "mapped" 4. (Matrix.get doubled 1 1)

let test_matrix_equal () =
  let a = Matrix.init ~dim:2 ~f:(fun i j -> float_of_int (i + j)) in
  let b = Matrix.copy a in
  Alcotest.(check bool) "equal" true (Matrix.equal a b);
  Matrix.set b 0 1 100.;
  Alcotest.(check bool) "not equal" false (Matrix.equal a b)

let test_matrix_equal_infinities () =
  let a = Matrix.create ~dim:2 ~init:infinity in
  let b = Matrix.create ~dim:2 ~init:infinity in
  Alcotest.(check bool) "infinities equal" true (Matrix.equal a b)

let test_matrix_iteri_visits_all () =
  let m = Matrix.create ~dim:3 ~init:1. in
  let total = ref 0. in
  Matrix.iteri m ~f:(fun _ _ v -> total := !total +. v);
  check_float "9 entries" 9. !total

let test_matrix_int () =
  let m = Matrix.Int.create ~dim:2 ~init:(-1) in
  Matrix.Int.set m 0 1 7;
  Alcotest.(check int) "get" 7 (Matrix.Int.get m 0 1);
  Alcotest.(check int) "init" (-1) (Matrix.Int.get m 1 0);
  let c = Matrix.Int.copy m in
  Matrix.Int.set c 0 1 8;
  Alcotest.(check int) "copy isolated" 7 (Matrix.Int.get m 0 1);
  Alcotest.(check bool) "equality" false (Matrix.Int.equal m c)

(* - Table - *)

let test_table_renders_rows () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length rendered > 0
    && Astring_contains.contains rendered "name"
    && Astring_contains.contains rendered "alpha"
    && Astring_contains.contains rendered "22")

let test_table_arity_mismatch () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_alignment () =
  let t = Table.create ~columns:[ ("n", Table.Right) ] in
  Table.add_row t [ "1" ];
  Table.add_row t [ "100" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* the "1" row must be right-padded to the width of "100" *)
  let row1 = List.nth lines 3 in
  Alcotest.(check bool) "right aligned" true (Astring_contains.contains row1 "  1")

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416" (Table.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "percent" "47.8%" (Table.cell_percent 0.478)

(* - Units - *)

let test_units_cycle () =
  check_float "100 MHz" 1e8 Units.clock_frequency_hz;
  check_float "10 ns" 1e-8 Units.cycle_seconds

let test_units_power_to_energy () =
  (* 6.94 mW at 100 MHz = 69.4 pJ per cycle *)
  check_float_eps 1e-6 "controller dynamic" 69.4
    (Units.picojoules_per_cycle_of_milliwatts 6.94)

let test_units_roundtrip () =
  check_float_eps 1e-9 "pJ <-> J" 123.45
    (Units.picojoules_of_joules (Units.joules_of_picojoules 123.45))

let suite =
  [
    ( "util/prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "int covers range" `Quick test_prng_int_covers_range;
        Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
        Alcotest.test_case "float mean" `Quick test_prng_float_mean;
        Alcotest.test_case "bool balance" `Quick test_prng_bool_balance;
        Alcotest.test_case "bytes length" `Quick test_prng_bytes_length;
        Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
        Alcotest.test_case "split differs" `Quick test_prng_split_differs;
        Alcotest.test_case "byte range" `Quick test_prng_byte_range;
      ] );
    ( "util/stats",
      [
        Alcotest.test_case "basic accumulation" `Quick test_stats_basic;
        Alcotest.test_case "single observation" `Quick test_stats_single_observation;
        Alcotest.test_case "merge equals concat" `Quick test_stats_merge_equals_concat;
        Alcotest.test_case "merge with empty" `Quick test_stats_merge_empty;
        Alcotest.test_case "percentiles" `Quick test_stats_percentile;
        Alcotest.test_case "percentile interpolates" `Quick test_stats_percentile_interpolates;
        Alcotest.test_case "percentile empty" `Quick test_stats_percentile_empty;
        QCheck_alcotest.to_alcotest prop_stats_mean_bounded;
        QCheck_alcotest.to_alcotest prop_stats_merge_commutative;
      ] );
    ( "util/matrix",
      [
        Alcotest.test_case "create/get/set" `Quick test_matrix_create_get_set;
        Alcotest.test_case "bad dim" `Quick test_matrix_bad_dim;
        Alcotest.test_case "init" `Quick test_matrix_init;
        Alcotest.test_case "copy isolated" `Quick test_matrix_copy_isolated;
        Alcotest.test_case "map" `Quick test_matrix_map;
        Alcotest.test_case "equal" `Quick test_matrix_equal;
        Alcotest.test_case "equal infinities" `Quick test_matrix_equal_infinities;
        Alcotest.test_case "iteri visits all" `Quick test_matrix_iteri_visits_all;
        Alcotest.test_case "int matrices" `Quick test_matrix_int;
      ] );
    ( "util/table",
      [
        Alcotest.test_case "renders rows" `Quick test_table_renders_rows;
        Alcotest.test_case "arity mismatch" `Quick test_table_arity_mismatch;
        Alcotest.test_case "alignment" `Quick test_table_alignment;
        Alcotest.test_case "cell formatting" `Quick test_table_cells;
      ] );
    ( "util/units",
      [
        Alcotest.test_case "cycle constants" `Quick test_units_cycle;
        Alcotest.test_case "power to energy" `Quick test_units_power_to_energy;
        Alcotest.test_case "roundtrip" `Quick test_units_roundtrip;
      ] );
  ]
