(* Checkpoint/restore: binary format round-trips, CRC protection, and
   the engine bit-identity guarantee (run-to-N + checkpoint + restore +
   run-to-end = uninterrupted run), including under fault injection. *)

module Checkpoint = Etx_etsim.Checkpoint
module Engine = Etx_etsim.Engine
module Metrics = Etx_etsim.Metrics
module Config = Etx_etsim.Config
module Spec = Etx_fault.Spec
module Policy = Etx_routing.Policy
module Topology = Etx_graph.Topology
module Calibration = Etextile.Calibration

(* - format primitives - *)

let test_crc32_vector () =
  (* the standard IEEE CRC-32 check value *)
  let b = Bytes.of_string "123456789" in
  Alcotest.(check int32) "check value" 0xCBF43926l
    (Checkpoint.crc32 b ~pos:0 ~len:(Bytes.length b))

let test_writer_reader_roundtrip () =
  let w = Checkpoint.Writer.create () in
  Checkpoint.Writer.byte w 200;
  Checkpoint.Writer.bool w true;
  Checkpoint.Writer.int w (-123456789);
  Checkpoint.Writer.int64 w 0x0123456789ABCDEFL;
  Checkpoint.Writer.float w 3.141592653589793;
  Checkpoint.Writer.float w nan;
  Checkpoint.Writer.string w "hello";
  Checkpoint.Writer.option w (Checkpoint.Writer.int w) None;
  Checkpoint.Writer.option w (Checkpoint.Writer.int w) (Some 7);
  Checkpoint.Writer.list w (Checkpoint.Writer.int w) [ 1; 2; 3 ];
  Checkpoint.Writer.int_array w [| 4; 5 |];
  Checkpoint.Writer.float_array w [| 1.5; -2.5 |];
  Checkpoint.Writer.bool_array w [| true; false; true |];
  let r = Checkpoint.Reader.create (Checkpoint.Writer.contents w) in
  Alcotest.(check int) "byte" 200 (Checkpoint.Reader.byte r);
  Alcotest.(check bool) "bool" true (Checkpoint.Reader.bool r);
  Alcotest.(check int) "int" (-123456789) (Checkpoint.Reader.int r);
  Alcotest.(check int64) "int64" 0x0123456789ABCDEFL (Checkpoint.Reader.int64 r);
  Alcotest.(check (float 0.)) "float" 3.141592653589793 (Checkpoint.Reader.float r);
  Alcotest.(check bool) "nan round-trips" true
    (Float.is_nan (Checkpoint.Reader.float r));
  Alcotest.(check string) "string" "hello" (Checkpoint.Reader.string r);
  Alcotest.(check (option int)) "none" None
    (Checkpoint.Reader.option r (fun () -> Checkpoint.Reader.int r));
  Alcotest.(check (option int)) "some" (Some 7)
    (Checkpoint.Reader.option r (fun () -> Checkpoint.Reader.int r));
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
    (Checkpoint.Reader.list r (fun () -> Checkpoint.Reader.int r));
  Alcotest.(check (array int)) "int array" [| 4; 5 |] (Checkpoint.Reader.int_array r);
  Alcotest.(check (array (float 0.))) "float array" [| 1.5; -2.5 |]
    (Checkpoint.Reader.float_array r);
  Alcotest.(check (array bool)) "bool array" [| true; false; true |]
    (Checkpoint.Reader.bool_array r);
  Alcotest.(check bool) "drained" true (Checkpoint.Reader.at_end r)

let test_reader_rejects_overrun () =
  let w = Checkpoint.Writer.create () in
  Checkpoint.Writer.int w 3;
  let r = Checkpoint.Reader.create (Checkpoint.Writer.contents w) in
  ignore (Checkpoint.Reader.int r);
  (match Checkpoint.Reader.int r with
  | _ -> Alcotest.fail "read past end accepted"
  | exception Checkpoint.Error (Checkpoint.Malformed _) -> ());
  (* a length prefix larger than the payload must be rejected, not
     allocated *)
  let w = Checkpoint.Writer.create () in
  Checkpoint.Writer.int w max_int;
  let r = Checkpoint.Reader.create (Checkpoint.Writer.contents w) in
  match Checkpoint.Reader.string r with
  | _ -> Alcotest.fail "oversized length accepted"
  | exception Checkpoint.Error (Checkpoint.Malformed _) -> ()

let test_frame_roundtrip () =
  let payload = Bytes.of_string "some payload bytes" in
  let framed = Checkpoint.frame payload in
  Alcotest.(check bytes) "unframe inverts frame" payload (Checkpoint.unframe framed)

let expect_error name expected f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": accepted")
  | exception Checkpoint.Error e ->
    Alcotest.(check string) name
      (Checkpoint.error_to_string expected)
      (Checkpoint.error_to_string e)

let test_frame_rejections () =
  let payload = Bytes.of_string "some payload bytes" in
  let framed = Checkpoint.frame payload in
  (* corrupted payload byte -> CRC mismatch *)
  let corrupt = Bytes.copy framed in
  let mid = 20 + (Bytes.length payload / 2) in
  Bytes.set corrupt mid (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x40));
  expect_error "corrupted" Checkpoint.Crc_mismatch (fun () -> Checkpoint.unframe corrupt);
  (* truncation *)
  expect_error "truncated" Checkpoint.Truncated (fun () ->
      Checkpoint.unframe (Bytes.sub framed 0 (Bytes.length framed - 3)));
  expect_error "empty" Checkpoint.Truncated (fun () -> Checkpoint.unframe Bytes.empty);
  (* wrong magic *)
  let bad = Bytes.copy framed in
  Bytes.set bad 0 'X';
  expect_error "magic" Checkpoint.Bad_magic (fun () -> Checkpoint.unframe bad);
  (* future version *)
  let future = Bytes.copy framed in
  Bytes.set_int32_le future 8 99l;
  expect_error "version" (Checkpoint.Unsupported_version 99) (fun () ->
      Checkpoint.unframe future)

let test_file_roundtrip () =
  let path = Filename.temp_file "etx_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let payload = Bytes.of_string "persisted" in
      Checkpoint.write_file path payload;
      Alcotest.(check bytes) "read back" payload (Checkpoint.read_file path);
      (* truncated on disk -> rejected *)
      let oc = open_out_bin path in
      output_string oc "ETXCKPT1";
      close_out oc;
      expect_error "truncated file" Checkpoint.Truncated (fun () ->
          Checkpoint.read_file path))

(* - engine bit-identity - *)

let faulty_spec ~seed =
  Spec.make ~seed ~link_wearout_rate:1e-6 ~bit_error_rate:5e-4 ~brownout_rate:2e-5
    ~brownout_duration_cycles:1000 ~upload_loss_rate:0.1 ~download_loss_rate:0.1 ()

let finish engine =
  match Engine.run_until engine ~cycle:max_int with
  | Engine.Finished metrics -> metrics
  | Engine.Paused -> Alcotest.fail "run_until max_int paused"

(* run [config] uninterrupted, then again with a checkpoint/restore break
   at [stop], and insist the metrics are structurally identical *)
let check_bit_identity ?(name = "metrics") config ~stop =
  let reference = Engine.simulate config in
  let engine = Engine.create config in
  (match Engine.run_until engine ~cycle:stop with
  | Engine.Finished metrics ->
    (* the run ended before the checkpoint cycle: still must agree *)
    Alcotest.(check bool) (name ^ " (no pause)") true (metrics = reference)
  | Engine.Paused ->
    let payload = Engine.checkpoint engine in
    let restored = Engine.restore config payload in
    let metrics = finish restored in
    Alcotest.(check bool) name true (metrics = reference));
  reference

let test_bit_identity_5x5_ear_with_faults () =
  let config =
    Calibration.config ~mesh_size:5 ~seed:2 ~fault:(faulty_spec ~seed:42) ()
  in
  let reference = Engine.simulate config in
  (* checkpoint at several points across the lifetime, including frame
     boundaries and cycle 0 *)
  let lifetime = reference.Metrics.lifetime_cycles in
  List.iter
    (fun stop ->
      ignore
        (check_bit_identity ~name:(Printf.sprintf "stop at %d" stop) config ~stop))
    [ 0; lifetime / 7; lifetime / 3; lifetime / 2; (lifetime * 9) / 10 ]

let test_bit_identity_through_file_and_double_resume () =
  let config =
    Calibration.config ~mesh_size:4 ~seed:3 ~fault:(faulty_spec ~seed:7) ()
  in
  let reference = Engine.simulate config in
  let lifetime = reference.Metrics.lifetime_cycles in
  let path = Filename.temp_file "etx_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let engine = Engine.create config in
      (match Engine.run_until engine ~cycle:(lifetime / 4) with
      | Engine.Finished _ -> Alcotest.fail "died before first pause"
      | Engine.Paused -> Engine.checkpoint_to_file engine path);
      let resumed = Engine.restore_from_file config path in
      (* pause a second time: checkpoints must compose *)
      (match Engine.run_until resumed ~cycle:(lifetime / 2) with
      | Engine.Finished _ -> Alcotest.fail "died before second pause"
      | Engine.Paused -> Engine.checkpoint_to_file resumed path);
      let resumed = Engine.restore_from_file config path in
      Alcotest.(check bool) "metrics identical" true (finish resumed = reference))

let test_bit_identity_sdr_and_controllers () =
  (* exercise the maximin-free path, finite controllers and an ideal
     battery bank through the same guarantee *)
  let config =
    Calibration.config ~mesh_size:4 ~seed:5 ~policy:(Policy.sdr ())
      ~controllers:(Config.Battery_controllers { count = 2 })
      ()
  in
  ignore (check_bit_identity ~name:"sdr/finite controllers" config ~stop:40_000)

let test_checkpoint_guards () =
  let config = Calibration.config ~mesh_size:4 ~seed:1 () in
  let engine = Engine.create config in
  (match Engine.checkpoint engine with
  | _ -> Alcotest.fail "checkpoint before start accepted"
  | exception Invalid_argument _ -> ());
  let metrics = finish engine in
  ignore metrics;
  (match Engine.checkpoint engine with
  | _ -> Alcotest.fail "checkpoint after finish accepted"
  | exception Invalid_argument _ -> ());
  match Engine.run_until engine ~cycle:max_int with
  | _ -> Alcotest.fail "run_until after finish accepted"
  | exception Invalid_argument _ -> ()

let test_fingerprint_mismatch () =
  let config = Calibration.config ~mesh_size:4 ~seed:1 () in
  let engine = Engine.create config in
  (match Engine.run_until engine ~cycle:10_000 with
  | Engine.Finished _ -> Alcotest.fail "died before pause"
  | Engine.Paused -> ());
  let payload = Engine.checkpoint engine in
  let other = Calibration.config ~mesh_size:4 ~seed:2 () in
  (match Engine.restore other payload with
  | _ -> Alcotest.fail "restore under different config accepted"
  | exception Checkpoint.Error (Checkpoint.Fingerprint_mismatch _) -> ());
  (* a mangled payload is rejected as malformed, never a crash *)
  let broken = Bytes.sub payload 0 (Bytes.length payload - 5) in
  match Engine.restore config broken with
  | _ -> Alcotest.fail "truncated payload accepted"
  | exception Checkpoint.Error _ -> ()

(* - QCheck: restore-then-run is bit-identical across random configs and
   fault plans - *)

type scenario = {
  size : int;
  seed : int;
  fault_seed : int;
  ber : float;
  wearout : float;
  brownout : float;
  upload_loss : float;
  download_loss : float;
  retries : int;
  stop_num : int; (* stop cycle = lifetime * stop_num / 16 *)
}

let scenario_gen =
  QCheck.Gen.(
    map
      (fun ((size, seed, fault_seed, ber, wearout), (brownout, upload_loss, download_loss, retries, stop_num)) ->
        { size; seed; fault_seed; ber; wearout; brownout; upload_loss;
          download_loss; retries; stop_num })
      (pair
         (tup5 (int_range 3 5) (int_range 1 1000) (int_range 0 10_000)
            (float_bound_inclusive 1e-3) (float_bound_inclusive 1e-5))
         (tup5 (float_bound_inclusive 5e-5) (float_bound_inclusive 0.3)
            (float_bound_inclusive 0.3) (int_range 0 3) (int_range 0 16))))

let scenario_print s =
  Printf.sprintf
    "{size=%d seed=%d fault_seed=%d ber=%g wear=%g brown=%g up=%.2f down=%.2f \
     retries=%d stop=%d/16}"
    s.size s.seed s.fault_seed s.ber s.wearout s.brownout s.upload_loss
    s.download_loss s.retries s.stop_num

let scenario_arbitrary = QCheck.make ~print:scenario_print scenario_gen

let scenario_config s =
  let fault =
    Spec.make ~seed:s.fault_seed ~link_wearout_rate:s.wearout ~bit_error_rate:s.ber
      ~brownout_rate:s.brownout ~brownout_duration_cycles:1500
      ~upload_loss_rate:s.upload_loss ~download_loss_rate:s.download_loss ()
  in
  Config.make
    ~topology:(Topology.square_mesh ~size:s.size ())
    ~policy:(Policy.ear ()) ~fault ~max_retransmissions:s.retries
    ~job_source:Config.Round_robin_entry ~seed:s.seed ~max_jobs:(Some 60)
    ~max_cycles:1_000_000 ()

let invariant_restore_bit_identical =
  QCheck.Test.make
    ~name:"checkpoint: restore-then-run is bit-identical to uninterrupted run"
    ~count:30 scenario_arbitrary (fun s ->
      let config = scenario_config s in
      let reference = Engine.simulate config in
      let stop = reference.Metrics.lifetime_cycles * s.stop_num / 16 in
      let engine = Engine.create config in
      match Engine.run_until engine ~cycle:stop with
      | Engine.Finished metrics -> metrics = reference
      | Engine.Paused ->
        let restored = Engine.restore config (Engine.checkpoint engine) in
        finish restored = reference)

let suite =
  [
    ( "checkpoint/format",
      [
        ("crc32 check value", `Quick, test_crc32_vector);
        ("writer/reader round-trip", `Quick, test_writer_reader_roundtrip);
        ("reader rejects overrun", `Quick, test_reader_rejects_overrun);
        ("frame round-trip", `Quick, test_frame_roundtrip);
        ("frame rejections", `Quick, test_frame_rejections);
        ("file round-trip", `Quick, test_file_roundtrip);
      ] );
    ( "checkpoint/engine",
      [
        ("5x5 EAR with faults bit-identity", `Slow, test_bit_identity_5x5_ear_with_faults);
        ( "file round-trip and double resume",
          `Slow,
          test_bit_identity_through_file_and_double_resume );
        ("sdr + finite controllers", `Slow, test_bit_identity_sdr_and_controllers);
        ("checkpoint guards", `Quick, test_checkpoint_guards);
        ("fingerprint mismatch", `Quick, test_fingerprint_mismatch);
        QCheck_alcotest.to_alcotest invariant_restore_bit_identical;
      ] );
  ]
