(* Unit tests for the supervisor state machine, driven through scripted
   process ops and an injected clock — no real processes, no real time.
   The scripted world tracks which pids are "alive"; sleep advances the
   clock deterministically. *)

module Supervisor = Etx_service.Supervisor

(* a scripted world: pids are handed out sequentially per child, dead
   pids answer reap = true, and time only moves via sleep *)
type world = {
  mutable time : float;
  mutable next_pid : int;
  mutable alive : int list;
  mutable spawned : (int * int) list;  (** (child index, pid), most recent first *)
  mutable termed : int list;
  mutable killed : int list;
  mutable ready_pids : int list;  (** pids that answer the readiness probe *)
}

let make_world () =
  {
    time = 0.;
    next_pid = 100;
    alive = [];
    spawned = [];
    termed = [];
    killed = [];
    ready_pids = [];
  }

let pid_of w index =
  match List.assoc_opt index w.spawned with
  | Some pid -> pid
  | None -> Alcotest.failf "child %d never spawned" index

let ops_of w ?(term_exits = true) ?(ready = fun _ -> true) () =
  {
    Supervisor.spawn =
      (fun index ->
        let pid = w.next_pid in
        w.next_pid <- w.next_pid + 1;
        w.alive <- pid :: w.alive;
        w.ready_pids <- pid :: w.ready_pids;
        w.spawned <- (index, pid) :: w.spawned;
        pid);
    term =
      (fun pid ->
        w.termed <- pid :: w.termed;
        if term_exits then w.alive <- List.filter (( <> ) pid) w.alive);
    kill =
      (fun pid ->
        w.killed <- pid :: w.killed;
        w.alive <- List.filter (( <> ) pid) w.alive);
    reap = (fun pid -> not (List.mem pid w.alive));
    ready = (fun index -> ready index);
    now = (fun () -> w.time);
    sleep = (fun s -> w.time <- w.time +. s);
    log = ignore;
  }

let cfg children =
  {
    (Supervisor.default_config ~children) with
    backoff_base_ms = 100.;
    backoff_cap_ms = 1000.;
    seed = 7;
    stable_after_s = 5.;
    drain_grace_s = 1.;
    ready_timeout_s = 2.;
  }

let kill_out_of_band w pid = w.alive <- List.filter (( <> ) pid) w.alive

(* - healing - *)

let test_restart_after_backoff_delay () =
  let w = make_world () in
  let sup = Supervisor.create (ops_of w ()) (cfg 2) in
  Supervisor.start sup;
  let pid0 = Supervisor.pid sup 0 in
  Alcotest.(check bool) "both children running" true
    (pid0 > 0 && Supervisor.pid sup 1 > 0);
  kill_out_of_band w pid0;
  Supervisor.tick sup;
  (* the death was observed: child 0 moves to backoff, not instantly back *)
  Alcotest.(check int) "dead child has no pid during backoff" (-1)
    (Supervisor.pid sup 0);
  Alcotest.(check int) "no restart before the delay" 0
    (Supervisor.restarts_total sup);
  (* backoff delays draw from [base, 3*base] capped: advance past the cap *)
  w.time <- w.time +. 1.1;
  Supervisor.tick sup;
  Alcotest.(check int) "restarted after the delay" 1 (Supervisor.restarts_total sup);
  let pid0' = Supervisor.pid sup 0 in
  Alcotest.(check bool) "fresh pid" true (pid0' > 0 && pid0' <> pid0);
  Alcotest.(check int) "the healthy sibling was left alone"
    (pid_of w 1) (Supervisor.pid sup 1)

let test_backoff_escalates_and_resets () =
  let w = make_world () in
  let sup = Supervisor.create (ops_of w ()) (cfg 1) in
  Supervisor.start sup;
  (* crash-loop: kill the child the instant it comes back, three times,
     and record each backoff delay from the phase-change timing *)
  let delay_of_crash () =
    kill_out_of_band w (Supervisor.pid sup 0);
    Supervisor.tick sup;
    let died_at = w.time in
    let rec until_restarted last =
      if Supervisor.pid sup 0 > 0 then w.time -. died_at
      else begin
        w.time <- w.time +. 0.01;
        Supervisor.tick sup;
        until_restarted last
      end
    in
    until_restarted died_at
  in
  let d1 = delay_of_crash () in
  let d2 = delay_of_crash () in
  let _d3 = delay_of_crash () in
  (* decorrelated jitter is random but monotone in expectation; assert
     the mechanism, not the draw: delays stay in [base, cap] and a crash
     loop is allowed to escalate past the base range *)
  List.iteri
    (fun i d ->
      if d < 0.1 -. 1e-9 || d > 1.1 then
        Alcotest.failf "crash %d delay %.3fs outside [base, cap]" (i + 1) d)
    [ d1; d2; _d3 ];
  (* now let it run stably past stable_after_s: the next crash must pay
     a de-escalated (first-range) delay again *)
  w.time <- w.time +. 10.;
  let d4 = delay_of_crash () in
  if d4 > 0.3 +. 0.02 then
    Alcotest.failf "delay %.3fs after a stable run: backoff did not reset" d4

(* - drain - *)

let test_drain_graceful () =
  let w = make_world () in
  let sup = Supervisor.create (ops_of w ()) (cfg 1) in
  Supervisor.start sup;
  let pid = Supervisor.pid sup 0 in
  Alcotest.(check bool) "drain reports graceful" true (Supervisor.drain sup 0);
  Alcotest.(check (list int)) "exactly one SIGTERM" [ pid ] w.termed;
  Alcotest.(check (list int)) "no SIGKILL" [] w.killed;
  Alcotest.(check int) "no forced kills counted" 0
    (Supervisor.forced_kills_total sup);
  (* a drained child stays down: ticks must not resurrect it *)
  Supervisor.tick sup;
  w.time <- w.time +. 5.;
  Supervisor.tick sup;
  Alcotest.(check int) "stopped child not restarted" (-1) (Supervisor.pid sup 0);
  Alcotest.(check int) "no heal counted" 0 (Supervisor.restarts_total sup)

let test_drain_escalates_to_sigkill () =
  let w = make_world () in
  (* term_exits:false scripts a child that ignores SIGTERM *)
  let sup = Supervisor.create (ops_of w ~term_exits:false ()) (cfg 1) in
  Supervisor.start sup;
  let pid = Supervisor.pid sup 0 in
  Alcotest.(check bool) "drain reports forced" false (Supervisor.drain sup 0);
  Alcotest.(check (list int)) "SIGTERM was tried first" [ pid ] w.termed;
  Alcotest.(check (list int)) "then SIGKILL" [ pid ] w.killed;
  Alcotest.(check int) "forced kill counted" 1 (Supervisor.forced_kills_total sup)

let test_resume_requires_stopped () =
  let w = make_world () in
  let sup = Supervisor.create (ops_of w ()) (cfg 1) in
  Supervisor.start sup;
  (match Supervisor.resume sup 0 with
  | _ -> Alcotest.fail "resume of a running child accepted"
  | exception Invalid_argument _ -> ());
  ignore (Supervisor.drain sup 0);
  Alcotest.(check bool) "resume after drain" true (Supervisor.resume sup 0);
  Alcotest.(check bool) "running again" true (Supervisor.pid sup 0 > 0)

(* - rolling restart - *)

let test_rolling_restart_replaces_every_child_in_order () =
  let w = make_world () in
  let sup = Supervisor.create (ops_of w ()) (cfg 3) in
  Supervisor.start sup;
  let before = List.init 3 (Supervisor.pid sup) in
  w.termed <- [];
  Alcotest.(check bool) "rolling restart graceful" true
    (Supervisor.rolling_restart sup);
  let after = List.init 3 (Supervisor.pid sup) in
  List.iteri
    (fun i (old_pid, new_pid) ->
      if new_pid <= 0 || new_pid = old_pid then
        Alcotest.failf "child %d not replaced (old %d, new %d)" i old_pid new_pid)
    (List.combine before after);
  (* one drain per child, oldest first: pids were termed in index order *)
  Alcotest.(check (list int)) "drained in index order" before (List.rev w.termed);
  Alcotest.(check (list int)) "never SIGKILLed" [] w.killed;
  Alcotest.(check int) "rolling restarts are not heal restarts" 0
    (Supervisor.restarts_total sup)

let test_rolling_restart_reports_stuck_child_but_rolls_everyone () =
  let w = make_world () in
  (* child 1 never answers ready after its restart *)
  let restarted = Hashtbl.create 3 in
  let ready index =
    if Hashtbl.mem restarted index then index <> 1
    else begin
      Hashtbl.replace restarted index ();
      true
    end
  in
  let sup = Supervisor.create (ops_of w ~ready ()) (cfg 3) in
  Supervisor.start sup;
  Alcotest.(check bool) "failure reported" false (Supervisor.rolling_restart sup);
  (* the fleet must still be on the new generation everywhere *)
  Alcotest.(check int) "every child was drained" 3 (List.length w.termed)

let suite =
  [
    ( "supervisor",
      [
        Alcotest.test_case "restart after backoff delay" `Quick
          test_restart_after_backoff_delay;
        Alcotest.test_case "backoff escalates and resets" `Quick
          test_backoff_escalates_and_resets;
        Alcotest.test_case "graceful drain" `Quick test_drain_graceful;
        Alcotest.test_case "drain escalates to SIGKILL" `Quick
          test_drain_escalates_to_sigkill;
        Alcotest.test_case "resume requires stopped" `Quick
          test_resume_requires_stopped;
        Alcotest.test_case "rolling restart replaces every child" `Quick
          test_rolling_restart_replaces_every_child_in_order;
        Alcotest.test_case "rolling restart reports a stuck child" `Quick
          test_rolling_restart_reports_stuck_child_but_rolls_everyone;
      ] );
  ]
