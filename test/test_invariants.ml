(* Whole-engine property tests: random platform configurations must
   satisfy the simulator's global invariants. *)

module Config = Etx_etsim.Config
module Engine = Etx_etsim.Engine
module Metrics = Etx_etsim.Metrics
module Policy = Etx_routing.Policy
module Battery = Etx_battery.Battery
module Topology = Etx_graph.Topology

type scenario = {
  size : int;
  policy_index : int;
  ideal_battery : bool;
  concurrent : int;
  controller_count : int;  (* 0 = infinite *)
  seed : int;
  reception : float;
  frame_period : int;
  failures : int;
}

let policy_of_index = function
  | 0 -> Policy.ear ()
  | 1 -> Policy.sdr ()
  | 2 -> Policy.maximin ()
  | 3 -> Policy.ear_squared ()
  | _ -> Policy.ear ~q:4. ()

let scenario_gen =
  QCheck.Gen.(
    map
      (fun ((size, policy_index, ideal_battery, concurrent),
            (controller_count, seed, reception, frame_period, failures)) ->
        { size; policy_index; ideal_battery; concurrent; controller_count; seed;
          reception; frame_period; failures })
      (pair
         (quad (int_range 3 5) (int_range 0 4) bool (int_range 1 3))
         (tup5 (int_range 0 3) (int_range 1 1000) (float_bound_inclusive 1.)
            (int_range 400 1200) (int_range 0 3))))

let scenario_print s =
  Printf.sprintf
    "{size=%d policy=%d ideal=%b jobs=%d ctrl=%d seed=%d rx=%.2f frame=%d fail=%d}"
    s.size s.policy_index s.ideal_battery s.concurrent s.controller_count s.seed
    s.reception s.frame_period s.failures

let scenario_arbitrary = QCheck.make ~print:scenario_print scenario_gen

let build_config s =
  let topology = Topology.square_mesh ~size:s.size () in
  let controllers =
    if s.controller_count = 0 then Config.Infinite_controller
    else Config.Battery_controllers { count = s.controller_count }
  in
  let link_failure_schedule =
    if s.failures = 0 then []
    else
      Etextile.Experiments.random_failure_schedule ~topology ~count:s.failures
        ~before_cycle:10_000 ~seed:(s.seed + 17)
  in
  Config.make ~topology
    ~policy:(policy_of_index s.policy_index)
    ~battery_kind:
      (if s.ideal_battery then Battery.Ideal
       else Battery.Thin_film Battery.default_thin_film)
    ~concurrent_jobs:s.concurrent ~controllers ~seed:s.seed
    ~reception_energy_fraction:s.reception ~frame_period_cycles:s.frame_period
    ~link_failure_schedule ~job_source:Config.Round_robin_entry
    ~max_jobs:(Some 150) ~max_cycles:2_000_000 ()

let run s = Engine.simulate (build_config s)


let invariant_every_completed_job_verified =
  QCheck.Test.make ~name:"engine: every completed job's payload verifies" ~count:40
    scenario_arbitrary (fun s ->
      let m = run s in
      m.Metrics.jobs_verified = m.Metrics.jobs_completed)

let invariant_energy_conservation_ideal =
  QCheck.Test.make ~name:"engine: ideal-cell energy is conserved" ~count:40
    scenario_arbitrary (fun s ->
      let s = { s with ideal_battery = true } in
      let m = run s in
      let consumed =
        m.Metrics.computation_energy_pj +. m.communication_energy_pj
        +. m.control_upload_energy_pj
      in
      let accounted =
        consumed +. m.stranded_node_energy_pj +. m.residual_node_energy_pj
      in
      let capacity = float_of_int (s.size * s.size) *. 60000. in
      Float.abs (accounted -. capacity) < 1.)

let invariant_act_accounting =
  QCheck.Test.make ~name:"engine: acts >= 30 x completed jobs" ~count:40
    scenario_arbitrary (fun s ->
      let m = run s in
      m.Metrics.acts_total >= 30 * m.Metrics.jobs_completed)

let invariant_recoveries_bounded =
  QCheck.Test.make ~name:"engine: recoveries never exceed reports" ~count:40
    scenario_arbitrary (fun s ->
      let m = run s in
      m.Metrics.deadlocks_recovered <= m.Metrics.deadlocks_reported)

let invariant_bookkeeping_sane =
  QCheck.Test.make ~name:"engine: counters and energies are sane" ~count:40
    scenario_arbitrary (fun s ->
      let m = run s in
      m.Metrics.lifetime_cycles >= 0
      && m.Metrics.lifetime_cycles <= 2_000_000
      && m.Metrics.frames >= 1
      && m.Metrics.recomputations <= m.Metrics.frames
      && m.Metrics.stranded_node_energy_pj >= 0.
      && m.Metrics.residual_node_energy_pj >= 0.
      && m.Metrics.computation_energy_pj >= 0.
      && m.Metrics.communication_energy_pj >= 0.
      && m.Metrics.hops_total >= 0
      && m.Metrics.links_failed <= s.failures
      && m.Metrics.job_latency_max_cycles >= 0
      && (m.Metrics.jobs_completed = 0
          || m.Metrics.job_latency_mean_cycles > 0.))

let invariant_job_cap_respected =
  QCheck.Test.make ~name:"engine: the job cap stops the run exactly" ~count:40
    scenario_arbitrary (fun s ->
      let m = run s in
      match m.Metrics.death_reason with
      | Metrics.Job_limit -> m.Metrics.jobs_completed = 150
      | Metrics.Job_lost_to_node_death _ | Metrics.Module_unreachable _
      | Metrics.Entry_node_dead _ | Metrics.Controllers_exhausted
      | Metrics.Cycle_limit | Metrics.Job_lost_to_brownout _ ->
        m.Metrics.jobs_completed < 150)

let invariant_deterministic =
  QCheck.Test.make ~name:"engine: identical configurations replay identically" ~count:15
    scenario_arbitrary (fun s ->
      let a = run s and b = run s in
      a.Metrics.jobs_completed = b.Metrics.jobs_completed
      && a.Metrics.lifetime_cycles = b.Metrics.lifetime_cycles
      && a.Metrics.hops_total = b.Metrics.hops_total
      && a.Metrics.computation_energy_pj = b.Metrics.computation_energy_pj)

let invariant_per_module_energy_sums =
  QCheck.Test.make ~name:"engine: per-module energies sum to the total" ~count:40
    scenario_arbitrary (fun s ->
      let m = run s in
      let by_module = Array.fold_left ( +. ) 0. m.Metrics.computation_energy_by_module_pj in
      Float.abs (by_module -. m.Metrics.computation_energy_pj) < 1e-6)

let invariant_battery_awareness_pays =
  QCheck.Test.make ~name:"engine: battery-aware routing never loses to SDR badly" ~count:15
    QCheck.(pair (int_range 3 5) (int_range 1 100))
    (fun (size, seed) ->
      let jobs policy_index =
        (run
           {
             size;
             policy_index;
             ideal_battery = false;
             concurrent = 1;
             controller_count = 0;
             seed;
             reception = 0.8;
             frame_period = 800;
             failures = 0;
           })
          .Metrics.jobs_completed
      in
      (* EAR at least matches SDR on every platform we can generate *)
      jobs 0 >= jobs 1)

let suite =
  [
    ( "engine/invariants",
      [
        QCheck_alcotest.to_alcotest invariant_every_completed_job_verified;
        QCheck_alcotest.to_alcotest invariant_energy_conservation_ideal;
        QCheck_alcotest.to_alcotest invariant_act_accounting;
        QCheck_alcotest.to_alcotest invariant_recoveries_bounded;
        QCheck_alcotest.to_alcotest invariant_bookkeeping_sane;
        QCheck_alcotest.to_alcotest invariant_job_cap_respected;
        QCheck_alcotest.to_alcotest invariant_deterministic;
        QCheck_alcotest.to_alcotest invariant_per_module_energy_sums;
        QCheck_alcotest.to_alcotest invariant_battery_awareness_pays;
      ] );
  ]
