(* The distributed AES pipeline, step by step.

   Shows that the platform's three modules (SubBytes/ShiftRows,
   MixColumns, KeyExpansion/AddRoundKey) cooperating over the mesh
   compute exactly the FIPS-197 cipher: first by unfolding the 30-act job
   plan by hand, then by tracing a simulated job through the fabric.

   Run with: dune exec examples/aes_pipeline.exe *)

let key_hex = "2b7e151628aed2a6abf7158809cf4f3c"
let plaintext_hex = "3243f6a8885a308d313198a2e0370734"
let expected_hex = "3925841d02dc09fbdc118597196a0b32" (* FIPS-197 Appendix B *)

let () =
  let key = Etx_aes.Aes.key_of_hex key_hex in
  let schedule = Etx_aes.Aes.schedule key in
  let plaintext = Etx_aes.Block.of_hex plaintext_hex in

  print_endline "1. The paper's partitioning (Sec 5.1.1):";
  List.iter
    (fun kind ->
      Printf.printf "   module %d: %-26s f_i = %2d acts/job, E_i = %6.2f pJ/act\n"
        (Etx_aes.Partition.module_index kind + 1)
        (Etx_aes.Partition.module_name kind)
        (Etx_aes.Partition.acts_per_job kind)
        (Etx_energy.Computation.energy_per_act Etx_energy.Computation.aes
           ~module_index:(Etx_aes.Partition.module_index kind)))
    [
      Etx_aes.Partition.Subbytes_shiftrows;
      Etx_aes.Partition.Mixcolumns;
      Etx_aes.Partition.Keyexpansion_addroundkey;
    ];

  print_endline "\n2. Unfolding one job's 30 acts by hand:";
  let state = ref plaintext in
  Array.iter
    (fun op ->
      state := Etx_aes.Partition.apply ~schedule op !state;
      if op.Etx_aes.Partition.step < 4 || op.step >= 28 then
        Printf.printf "   act %2d (round %2d, module %d) -> %s\n" op.step op.round
          (Etx_aes.Partition.module_index op.kind + 1)
          (Etx_aes.Block.to_hex !state)
      else if op.step = 4 then print_endline "   ...")
    Etx_aes.Partition.job_plan;
  Printf.printf "   pipeline output:  %s\n" (Etx_aes.Block.to_hex !state);
  Printf.printf "   FIPS-197 expects: %s\n" expected_hex;
  assert (Etx_aes.Block.to_hex !state = expected_hex);
  assert (Bytes.equal !state (Etx_aes.Aes.encrypt_block key plaintext));

  print_endline "\n3. The same job flowing through a simulated 4x4 mesh:";
  let config =
    Etextile.Calibration.config ~mesh_size:4 ~seed:7 ()
    |> fun base ->
    (* re-make with the Appendix B key and a single-job cap *)
    Etx_etsim.Config.make ~topology:base.Etx_etsim.Config.topology
      ~policy:base.policy ~frame_period_cycles:base.frame_period_cycles
      ~reception_energy_fraction:base.reception_energy_fraction
      ~job_source:base.job_source ~key_hex ~max_jobs:(Some 1) ()
  in
  let engine = Etx_etsim.Engine.create ~trace_capacity:128 config in
  let metrics = Etx_etsim.Engine.run engine in
  begin
    match Etx_etsim.Engine.trace engine with
    | Some trace ->
      List.iter
        (fun event -> Format.printf "   %a@." Etx_etsim.Trace.pp_event event)
        (Etx_etsim.Trace.events trace)
    | None -> ()
  end;
  Printf.printf "\n   jobs completed: %d, ciphertexts verified in-flight: %d\n"
    metrics.Etx_etsim.Metrics.jobs_completed metrics.jobs_verified;
  assert (metrics.jobs_verified = metrics.jobs_completed);
  print_endline "\nThe fabric computes real AES: every hop carries the actual state bytes."
