(* A platform architect's session: size the fabric before weaving it.

   Uses the static lifetime predictor (no simulation) to compare mesh
   sizes, runs the local-search placement optimizer where the paper's
   checkerboard does not exist or is weak (odd meshes), and pits the
   paper's EAR against the max-min residual-energy routing of the WSN
   literature the paper cites.

   Run with: dune exec examples/design_space.exe *)

let sequence = Etextile.Experiments.aes_module_sequence

let () =
  print_endline "1. Sizing by static prediction (no simulation needed):";
  List.iter
    (fun size ->
      let problem = Etextile.Calibration.problem ~mesh_size:size in
      let topology = Etx_graph.Topology.square_mesh ~size () in
      let mapping = Etx_routing.Mapping.checkerboard topology in
      let p =
        Etx_routing.Analysis.predict ~problem ~topology ~mapping
          ~module_sequence:sequence ()
      in
      Printf.printf
        "   %dx%d: ~%.0f jobs, bottleneck pool = module %d, %.2f hops/act\n" size size
        p.Etx_routing.Analysis.predicted_jobs
        (p.bottleneck_module + 1)
        p.mean_hops_per_act)
    [ 4; 5; 6; 7; 8 ];

  print_endline "\n2. Optimizing the 5x5 placement (no checkerboard fits an odd mesh):";
  let size = 5 in
  let problem = Etextile.Calibration.problem ~mesh_size:size in
  let topology = Etx_graph.Topology.square_mesh ~size () in
  let result =
    Etx_routing.Placement.optimize ~problem ~topology ~module_sequence:sequence
      ~iterations:400 ()
  in
  Printf.printf "   predicted %.1f -> %.1f jobs after %d accepted swaps\n"
    result.Etx_routing.Placement.initial_jobs
    result.prediction.Etx_routing.Analysis.predicted_jobs result.improved_swaps;
  print_endline "   checkerboard layout:        optimized layout:";
  let checkerboard = Etx_routing.Mapping.checkerboard topology in
  for y = 1 to size do
    print_string "     ";
    for x = 1 to size do
      let node = ((y - 1) * size) + (x - 1) in
      Printf.printf "%d " (Etx_routing.Mapping.module_of_node checkerboard ~node + 1)
    done;
    print_string "          ";
    for x = 1 to size do
      let node = ((y - 1) * size) + (x - 1) in
      Printf.printf "%d "
        (Etx_routing.Mapping.module_of_node result.Etx_routing.Placement.mapping ~node + 1)
    done;
    print_newline ()
  done;
  let simulate ?mapping () =
    (Etx_etsim.Engine.simulate
       (Etextile.Calibration.config ?mapping ~mesh_size:size ~seed:1 ()))
      .Etx_etsim.Metrics.jobs_completed
  in
  Printf.printf "   simulated: checkerboard %d, optimized %d jobs\n" (simulate ())
    (simulate ~mapping:result.Etx_routing.Placement.mapping ());

  print_endline "\n3. Routing algorithm shoot-out (6x6, thin-film cells):";
  List.iter
    (fun (name, policy) ->
      let m =
        Etx_etsim.Engine.simulate
          (Etextile.Calibration.config ~policy ~mesh_size:6 ~seed:1 ())
      in
      Printf.printf "   %-28s %3d jobs (mean latency %.0f cycles)\n" name
        m.Etx_etsim.Metrics.jobs_completed m.job_latency_mean_cycles)
    [
      ("EAR (paper)", Etx_routing.Policy.ear ());
      ("max-min residual (WSN [13])", Etx_routing.Policy.maximin ());
      ("SDR baseline", Etx_routing.Policy.sdr ());
    ];
  print_endline
    "\nEAR keeps its edge over the WSN-style widest-path router while using a\n\
     cheaper metric; the paper's computational-cost argument (Sec 2) comes on\n\
     top of that."
