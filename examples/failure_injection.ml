(* Wear-and-tear on the fabric.

   The paper's opening argument for a network architecture (instead of a
   bus) is that e-textile interconnects break: garments flex, stretch and
   go through the wash.  This example snaps textile links mid-run and
   watches EAR route around the damage, then records a per-frame timeline
   of the fabric draining.

   Run with: dune exec examples/failure_injection.exe *)

let mesh_size = 6

let run ~failures =
  let topology = Etx_graph.Topology.square_mesh ~size:mesh_size () in
  let link_failure_schedule =
    if failures = 0 then []
    else
      Etextile.Experiments.random_failure_schedule ~topology ~count:failures
        ~before_cycle:40_000 ~seed:2026
  in
  let config = Etextile.Calibration.config ~link_failure_schedule ~mesh_size ~seed:1 () in
  let engine = Etx_etsim.Engine.create ~record_timeline:true config in
  let metrics = Etx_etsim.Engine.run engine in
  (engine, metrics)

let () =
  Printf.printf "Breaking textile interconnects on a %dx%d mesh (60 links total):\n\n"
    mesh_size mesh_size;
  List.iter
    (fun failures ->
      let _, m = run ~failures in
      Printf.printf "  %2d links broken: %3d jobs, %2d breaks applied, death: %s\n"
        failures m.Etx_etsim.Metrics.jobs_completed m.links_failed
        (Etx_etsim.Metrics.death_reason_string m.death_reason))
    [ 0; 4; 8; 16; 24; 36 ];

  print_endline "\nPer-frame timeline with 16 broken links (charge sparkline):";
  let engine, metrics = run ~failures:16 in
  begin
    match Etx_etsim.Engine.timeline engine with
    | Some timeline ->
      Format.printf "%a@." Etx_etsim.Timeline.pp timeline;
      let csv = Etx_etsim.Timeline.to_csv timeline in
      let lines = String.split_on_char '\n' csv in
      Printf.printf "CSV export (%d rows), first lines:\n" (List.length lines - 2);
      List.iteri (fun i line -> if i < 4 then Printf.printf "  %s\n" line) lines
    | None -> ()
  end;
  Printf.printf
    "\nThe platform degraded gracefully: %d jobs despite a quarter of the fabric's\n\
     interconnects snapping (the controller reroutes at the next TDMA frame).\n"
    metrics.Etx_etsim.Metrics.jobs_completed
