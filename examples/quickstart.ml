(* Quickstart: simulate distributed AES on a 4x4 e-textile mesh under the
   paper's energy-aware routing (EAR), compare with the non-energy-aware
   baseline (SDR) and with the Theorem 1 analytic ceiling.

   Run with: dune exec examples/quickstart.exe *)

let simulate policy =
  let config = Etextile.Calibration.config ~policy ~mesh_size:4 ~seed:1 () in
  Etx_etsim.Engine.simulate config

let () =
  let ear = simulate (Etx_routing.Policy.ear ()) in
  let sdr = simulate (Etx_routing.Policy.sdr ()) in
  let problem = Etextile.Calibration.problem ~mesh_size:4 in
  let j_star = Etx_routing.Upper_bound.jobs problem in
  Printf.printf "4x4 e-textile mesh, AES-128, 60 nJ thin-film cells\n\n";
  Printf.printf "  EAR completed %d encryption jobs (all %d verified against FIPS-197)\n"
    ear.Etx_etsim.Metrics.jobs_completed ear.jobs_verified;
  Printf.printf "  SDR completed %d jobs\n" sdr.Etx_etsim.Metrics.jobs_completed;
  Printf.printf "  gain: %.1fx (paper reports 5x-15x across mesh sizes)\n"
    (float_of_int ear.jobs_completed /. float_of_int sdr.jobs_completed);
  Printf.printf "  Theorem 1 upper bound J* = %.2f jobs; EAR reached %.1f%% of it\n"
    j_star
    (100. *. float_of_int ear.jobs_completed /. j_star);
  Printf.printf "\nWhy SDR dies early: %s\n"
    (Etx_etsim.Metrics.death_reason_string sdr.death_reason);
  Printf.printf "Control-network overhead under EAR: %.1f%% of consumed energy\n"
    (100. *. Etx_etsim.Metrics.control_overhead_fraction ear)
