(* EAR on arbitrary topologies.

   The paper notes the methodology applies to any e-textile distributed
   system, not just meshes (Sec 1).  This example runs the same AES
   workload over a torus, a ring (a hem or wristband), a star (a hub
   block), and an irregular hand-built layout, using the Theorem-1
   proportional mapping where the checkerboard needs a grid.

   Run with: dune exec examples/custom_topology.exe *)

let problem node_count =
  Etx_routing.Problem.aes ~battery_budget_pj:Etextile.Calibration.battery_budget_pj
    ~node_budget:node_count ()

let simulate name (topology : Etx_graph.Topology.t) =
  let node_count = Etx_graph.Topology.node_count topology in
  let mapping =
    Etx_routing.Mapping.proportional ~problem:(problem node_count) ~node_count
  in
  let run policy =
    let config =
      Etx_etsim.Config.make ~topology ~mapping ~policy
        ~battery_capacity_pj:Etextile.Calibration.battery_budget_pj
        ~frame_period_cycles:Etextile.Calibration.frame_period_cycles
        ~reception_energy_fraction:Etextile.Calibration.reception_energy_fraction
        ~job_source:Etx_etsim.Config.Round_robin_entry ~seed:11 ()
    in
    Etx_etsim.Engine.simulate config
  in
  let ear = run (Etx_routing.Policy.ear ()) in
  let sdr = run (Etx_routing.Policy.sdr ()) in
  let j_star = Etx_routing.Upper_bound.jobs (problem node_count) in
  Printf.printf "%-22s %3d nodes: EAR %4d jobs (%4.1f%% of J* = %6.1f), SDR %3d, gain %4.1fx\n"
    name node_count ear.Etx_etsim.Metrics.jobs_completed
    (100. *. float_of_int ear.jobs_completed /. j_star)
    j_star sdr.Etx_etsim.Metrics.jobs_completed
    (float_of_int ear.jobs_completed /. float_of_int (max 1 sdr.jobs_completed))

let irregular_garment () =
  (* two 3x3 patches (chest and back) joined by a 3-node shoulder strap
     of longer lines *)
  let coords =
    Array.init 21 (fun i ->
        if i < 9 then ((i mod 3) + 1, (i / 3) + 1)
        else if i < 18 then begin
          let j = i - 9 in
          ((j mod 3) + 8, (j / 3) + 1)
        end
        else (4 + (i - 18), 4))
  in
  let patch base =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun c ->
            let id = base + (r * 3) + c in
            (if c < 2 then [ (id, id + 1, 1.) ] else [])
            @ if r < 2 then [ (id, id + 3, 1.) ] else [])
          [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  let strap =
    [ (6, 18, 4.); (18, 19, 4.); (19, 20, 4.); (20, 15, 4.) ]
    (* chest corner -> strap -> back corner, 4 cm textile runs *)
  in
  Etx_graph.Topology.custom ~name:"two patches + strap" ~node_count:21 ~coords
    ~links:(patch 0 @ patch 9 @ strap)

let () =
  print_endline "EAR vs SDR beyond the mesh (AES-128, thin-film cells):\n";
  simulate "6x6 torus" (Etx_graph.Topology.torus ~rows:6 ~cols:6 ());
  simulate "ring-24" (Etx_graph.Topology.ring ~length:24 ());
  simulate "star-15" (Etx_graph.Topology.star ~leaves:15 ());
  simulate "line-18" (Etx_graph.Topology.line ~length:18 ());
  simulate "garment patches" (irregular_garment ());
  print_endline "\nThe routing strategy carries over unchanged: only the weight matrix";
  print_endline "of phase one sees the topology."
