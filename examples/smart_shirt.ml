(* The smart shirt of Fig 3(a): a distributed-encryption region woven
   into a garment, driven by scattered sensors, managed by a bank of
   redundant central controllers with their own thin-film batteries.

   Sweeps the controller count (the Sec 7.3 experiment) and then renders
   the fabric's final energy landscape as a heatmap, which makes EAR's
   load spreading visible at a glance.

   Run with: dune exec examples/smart_shirt.exe *)

let mesh_size = 8

let run ~controllers =
  let config =
    Etextile.Calibration.config
      ~controllers:(Etx_etsim.Config.Battery_controllers { count = controllers })
      ~mesh_size ~seed:3 ()
  in
  let engine = Etx_etsim.Engine.create config in
  let metrics = Etx_etsim.Engine.run engine in
  (engine, metrics)

let topology = Etx_graph.Topology.square_mesh ~size:mesh_size ()

let print_heatmap engine =
  print_endline "   final charge per node:";
  print_string (Etextile.Heatmap.render_run ~topology ~engine ())

let () =
  Printf.printf "Smart shirt: %dx%d encryption region, scattered sensors, AES-128\n\n"
    mesh_size mesh_size;
  print_endline "Controller redundancy sweep (Sec 7.3):";
  let results =
    List.map
      (fun controllers ->
        let _, metrics = run ~controllers in
        Printf.printf
          "   %2d controller(s): %3d jobs, lifetime %6d cycles, death: %s\n" controllers
          metrics.Etx_etsim.Metrics.jobs_completed metrics.lifetime_cycles
          (Etx_etsim.Metrics.death_reason_string metrics.death_reason);
        (controllers, metrics.Etx_etsim.Metrics.jobs_completed))
      [ 1; 2; 4; 7; 10 ]
  in
  let monotone =
    let rec check = function
      | (_, a) :: ((_, b) :: _ as rest) -> a <= b && check rest
      | _ -> true
    in
    check results
  in
  Printf.printf "\n   more controllers never hurt: %b (saturation = AES nodes dominate)\n\n"
    monotone;

  print_endline "Energy landscape at platform death (10 controllers, EAR):";
  let engine, metrics = run ~controllers:10 in
  print_heatmap engine;
  Printf.printf
    "\n   EAR drained the fabric almost uniformly before dying (%d jobs).\n"
    metrics.Etx_etsim.Metrics.jobs_completed;

  print_endline "\nSame platform under SDR for contrast:";
  let config =
    Etextile.Calibration.config ~policy:(Etx_routing.Policy.sdr ())
      ~controllers:(Etx_etsim.Config.Battery_controllers { count = 10 })
      ~mesh_size ~seed:3 ()
  in
  let engine = Etx_etsim.Engine.create config in
  let metrics = Etx_etsim.Engine.run engine in
  print_heatmap engine;
  Printf.printf
    "\n   SDR hammered a few hot nodes and died after %d jobs with the fabric full.\n"
    metrics.Etx_etsim.Metrics.jobs_completed
